"""Unit tests for the JS workload model and regex profiler."""

import pytest

from repro.jsruntime import CpuCostModel, JsFunction, RegexCall, RegexProfiler, Script


def test_regex_call_validation():
    with pytest.raises(ValueError):
        RegexCall("a", 10, "explode", 1, None)
    with pytest.raises(ValueError):
        RegexCall("a", 10, "test", 1, None, repeats=0)


def test_profiler_measures_real_work():
    profiler = RegexProfiler()
    call = profiler.profile(r"\d+", "abc123def", "search")
    assert call.pike_ops > 0
    assert call.subject_chars == 9
    assert call.dfa_ops is None  # search mode keeps the Pike VM


def test_profiler_dfa_for_test_mode():
    profiler = RegexProfiler()
    call = profiler.profile(r"(?:ads|track)\.", "https://track.example/x", "test")
    assert call.dfa_ops is not None
    assert call.dfa_ops > 0


def test_profiler_memoizes():
    profiler = RegexProfiler()
    first = profiler.profile(r"\w+", "hello world", "search")
    second = profiler.profile(r"\w+", "hello world", "search")
    assert first.pike_ops == second.pike_ops
    assert len(profiler._measured) == 1


def test_profiler_word_boundary_has_no_dfa():
    profiler = RegexProfiler()
    call = profiler.profile(r"\bcat\b", "a cat", "test")
    assert call.dfa_ops is None


def test_findall_costs_more_than_search():
    profiler = RegexProfiler()
    subject = "a1 b2 c3 d4 e5"
    search = profiler.profile(r"\w\d", subject, "search")
    findall = profiler.profile(r"\w\d", subject, "findall")
    assert findall.pike_ops > search.pike_ops


def test_cost_model_picks_dfa_for_test_calls():
    cost = CpuCostModel()
    call = RegexCall("p", 10, "test", pike_ops=1000, dfa_ops=100)
    assert cost.call_ops(call) == pytest.approx(100 * cost.dfa_op_cost)


def test_cost_model_falls_back_to_pike():
    cost = CpuCostModel()
    no_dfa = RegexCall("p", 10, "test", pike_ops=1000, dfa_ops=None)
    search = RegexCall("p", 10, "search", pike_ops=1000, dfa_ops=100)
    assert cost.call_ops(no_dfa) == pytest.approx(1000 * cost.pike_op_cost)
    assert cost.call_ops(search) == pytest.approx(1000 * cost.pike_op_cost)


def test_function_and_script_totals():
    cost = CpuCostModel()
    call = RegexCall("p", 10, "test", pike_ops=0, dfa_ops=100, repeats=2)
    fn = JsFunction("f", generic_ops=5_000, regex_calls=(call,))
    script = Script("s.js", compile_ops=1_000, functions=(fn,))
    regex_ops = 2 * 100 * cost.dfa_op_cost
    assert cost.function_ops(fn) == pytest.approx(5_000 + regex_ops)
    assert cost.script_ops(script) == pytest.approx(6_000 + regex_ops)
    assert cost.script_regex_ops(script) == pytest.approx(regex_ops)


def test_regex_fraction():
    cost = CpuCostModel()
    call = RegexCall("p", 10, "test", pike_ops=0, dfa_ops=1000)
    heavy = Script("h.js", 0, (JsFunction("f", 0.0 + 1, (call,)),))
    plain = Script("p.js", 0, (JsFunction("g", 1e6),))
    fraction = cost.regex_fraction([heavy, plain])
    assert 0 < fraction < 1


def test_has_regex_flag():
    assert not JsFunction("f", 1e6).has_regex
    call = RegexCall("p", 1, "test", 1, 1)
    assert JsFunction("f", 1e6, (call,)).has_regex


def test_script_regex_functions():
    call = RegexCall("p", 1, "test", 1, 1)
    with_regex = JsFunction("a", 1, (call,))
    without = JsFunction("b", 1)
    script = Script("s.js", 0, (with_regex, without))
    assert script.regex_functions == (with_regex,)
