"""Unit tests for critical-path extraction."""

import pytest

from repro.analysis import extract_critical_path
from repro.device import Device, NEXUS4
from repro.netstack import Link
from repro.sim import Environment
from repro.web import BrowserEngine
from repro.web.metrics import ActivityRecord
from repro.workloads import generate_page


def act(id, kind, start, end, deps=()):
    return ActivityRecord(id=id, kind=kind, label=str(id), start=start,
                          end=end, deps=tuple(deps))


def test_empty_activity_list():
    path = extract_critical_path([], 0.0)
    assert path.activities == []
    assert path.total == 0.0


def test_linear_chain():
    activities = [
        act(0, "fetch", 0.0, 1.0),
        act(1, "parse", 1.0, 2.0, (0,)),
        act(2, "script", 2.0, 5.0, (1,)),
    ]
    path = extract_critical_path(activities, 5.0)
    assert [a.id for a in path.activities] == [0, 1, 2]
    assert path.network_time == pytest.approx(1.0)
    assert path.compute_time == pytest.approx(4.0)


def test_picks_latest_finishing_dependency():
    activities = [
        act(0, "fetch", 0.0, 0.5),
        act(1, "fetch", 0.0, 2.0),
        act(2, "script", 2.0, 3.0, (0, 1)),
    ]
    path = extract_critical_path(activities, 3.0)
    assert [a.id for a in path.activities] == [1, 2]


def test_gap_attributed_as_queueing():
    activities = [
        act(0, "fetch", 0.0, 1.0),
        act(1, "script", 1.5, 2.0, (0,)),  # waited 0.5 s for the main thread
    ]
    path = extract_critical_path(activities, 2.0)
    assert path.kind_breakdown["script-queue"] == pytest.approx(0.5)
    assert path.compute_time == pytest.approx(1.0)  # 0.5 run + 0.5 queue
    assert path.network_time == pytest.approx(1.0)


def test_lead_in_counted_as_network():
    activities = [act(0, "fetch", 0.3, 1.0)]
    path = extract_critical_path(activities, 1.0)
    assert path.network_time == pytest.approx(1.0)


def test_decomposition_covers_plt_for_real_load(regex_factory):
    page = generate_page(21, "shopping", regex_factory)
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    browser = BrowserEngine(env, device, Link(env))
    result = env.run(env.process(browser.load(page)))
    path = extract_critical_path(result.activities, result.plt)
    assert path.total == pytest.approx(result.plt, rel=0.05)
    assert path.compute_time + path.network_time == pytest.approx(
        path.total, rel=1e-6
    )


def test_network_share_grows_with_lead_in():
    fast = extract_critical_path([act(0, "fetch", 0.0, 1.0)], 1.0)
    slow = extract_critical_path([act(0, "fetch", 2.0, 3.0)], 3.0)
    assert slow.network_time > fast.network_time


# -- trace-derived activity DAG (repro.obs integration) ---------------------

def _traced_load(regex_factory, install_obs: bool):
    from repro.obs import install

    page = generate_page(33, "news", regex_factory)
    env = Environment()
    tracer = install(env)[0] if install_obs else None
    device = Device(env, NEXUS4, pinned_mhz=1512)
    browser = BrowserEngine(env, device, Link(env))
    result = env.run(env.process(browser.load(page)))
    return result, tracer


def test_activities_from_trace_rebuilds_the_dag(regex_factory):
    from repro.analysis.critpath import activities_from_trace

    result, tracer = _traced_load(regex_factory, install_obs=True)
    rebuilt = activities_from_trace(tracer.spans)
    assert rebuilt == sorted(result.activities, key=lambda a: a.id)


def test_trace_and_charge_based_critical_paths_agree(regex_factory):
    result, tracer = _traced_load(regex_factory, install_obs=True)
    charged = extract_critical_path(result.activities, result.plt)
    traced = extract_critical_path([], result.plt, trace=tracer.spans)
    assert [a.id for a in traced.activities] == [a.id for a in charged.activities]
    assert traced.kind_breakdown == charged.kind_breakdown


def test_empty_trace_falls_back_to_charged_activities():
    activities = [act(0, "fetch", 0.0, 1.0)]
    path = extract_critical_path(activities, 1.0, trace=[])
    assert [a.id for a in path.activities] == [0]


def test_non_web_spans_are_ignored(regex_factory):
    from repro.analysis.critpath import activities_from_trace

    result, tracer = _traced_load(regex_factory, install_obs=True)
    non_web = [s for s in tracer.spans if s.cat != "web"]
    assert non_web  # the load also traced net/device/sim spans
    assert activities_from_trace(non_web) == []
