"""Fig 6: iperf TCP throughput vs CPU clock frequency (§4.1)."""

from repro.analysis import ascii_series
from repro.core.studies import throughput_vs_clock
from repro.device import NEXUS4_LADDER


def run_fig6():
    return throughput_vs_clock(ladder=NEXUS4_LADDER, duration_s=8.0)


def test_fig6(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    body = ascii_series({
        "throughput (Mbps)": [(p.clock_mhz, p.throughput_mbps)
                              for p in points]
    })
    fig_printer("Fig 6: TCP throughput vs clock frequency (Nexus4)", body)
    by_clock = {p.clock_mhz: p.throughput_mbps for p in points}
    # Paper: 48 Mbps at the top of the ladder, 32 Mbps at 384 MHz.
    assert abs(by_clock[1512] - 48) < 3
    assert abs(by_clock[384] - 32) < 3
    values = [p.throughput_mbps for p in points]
    assert all(a <= b + 0.5 for a, b in zip(values, values[1:]))
