"""DSP coprocessor offload (the paper's §4.2 prototype).

Models the Qualcomm Hexagon aDSP path the paper built with the Hexagon
SDK: JavaScript regex-containing functions are ported to C, loaded on the
DSP, and invoked over FastRPC.  Three pieces:

* :class:`~repro.dsp.fastrpc.FastRpcChannel` — the CPU↔DSP RPC path
  (invoke latency, marshalling, DSP serialization) plus DSP busy-time and
  energy accounting;
* :class:`~repro.dsp.kernel.DspRegexKernel` — prices a recorded
  :class:`~repro.jsruntime.model.RegexCall` and a function's generic work
  on the DSP (scalar VLIW for Pike-VM-shaped work, HVX vector lanes for
  table-driven DFA scans and vectorizable list operations);
* :class:`~repro.dsp.executor.DspScriptExecutor` — a drop-in
  script-executor for the browser engine that sends regex-containing
  functions to the DSP, exactly the replacement semantics of the paper's
  ePLT replay.
"""

from repro.dsp.fastrpc import FastRpcChannel
from repro.dsp.kernel import DspCostModel, DspRegexKernel
from repro.dsp.executor import DspScriptExecutor

__all__ = [
    "DspCostModel",
    "DspRegexKernel",
    "DspScriptExecutor",
    "FastRpcChannel",
]
