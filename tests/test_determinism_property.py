"""Property-based determinism checks: same seed => bit-identical metrics.

This is the runtime counterpart of simlint's static rules — the invariant
that makes every figure benchmark meaningful. A small web page load and a
short RTC call are each run twice with the same seed (bit-identical metric
dicts required) and with different seeds (background jitter must actually
differ somewhere in the metrics — bursts that miss the critical path still
show up in integrated energy).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core.studies import (
    RtcStudy,
    RtcStudyConfig,
    WebStudy,
    WebStudyConfig,
)
from repro.device import NEXUS4
from repro.rtc import CallConfig

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)

# Shared across examples: corpus generation is the expensive part, and each
# load_page/call_once builds a fresh Environment, so reuse is sound.
_WEB = WebStudy(WebStudyConfig(n_pages=1, trials=1))
_RTC = RtcStudy(RtcStudyConfig(call=CallConfig(call_duration_s=5.0),
                               trials=1))


def web_metrics(seed: int) -> dict:
    result = _WEB.load_page(NEXUS4, _WEB.corpus[0], seed, governor="OD")
    metrics = dataclasses.asdict(result)
    metrics.pop("activities")  # event records, not scalar metrics
    return metrics


def rtc_metrics(seed: int) -> dict:
    result = _RTC.call_once(NEXUS4, seed, governor="OD")
    return dataclasses.asdict(result)


@settings(max_examples=5, deadline=None)
@given(seed=SEEDS)
def test_web_same_seed_bit_identical(seed):
    assert web_metrics(seed) == web_metrics(seed)


@settings(max_examples=5, deadline=None)
@given(seed=SEEDS)
def test_rtc_same_seed_bit_identical(seed):
    assert rtc_metrics(seed) == rtc_metrics(seed)


@settings(max_examples=5, deadline=None)
@given(seeds=st.lists(SEEDS, min_size=2, max_size=2, unique=True))
def test_web_different_seeds_diverge(seeds):
    first, second = (web_metrics(seed) for seed in seeds)
    assert first != second


@settings(max_examples=5, deadline=None)
@given(seeds=st.lists(SEEDS, min_size=2, max_size=2, unique=True))
def test_rtc_different_seeds_diverge(seeds):
    first, second = (rtc_metrics(seed) for seed in seeds)
    assert first != second
