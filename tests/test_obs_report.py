"""Run reports: journal-version tolerance, renderers, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import JOURNAL_VERSION, RobustTrialRunner
from repro.obs.report import (
    JournalView,
    ReportData,
    cache_counts,
    cache_line,
    dispatch_counts,
    host_wall_by_trial,
    load_report_data,
    main as report_main,
    render_html,
    render_text,
    supervision_timeline,
)
from repro.obs.runlog import RunLog
from repro.core.background import make_rng
from repro.parallel.chaos import (
    CHAOS_CRASH,
    ChaosExecutor,
    ChaosFault,
    ChaosPlan,
)
from repro.sim import Environment, Interrupt


def crashy_trial(seed: int) -> float:
    rng = make_rng(seed)
    if rng.random() < 0.4:
        raise Interrupt("fault:crash")
    return rng.uniform(1.0, 2.0)


def write_journal(path, records, version=JOURNAL_VERSION, experiment="exp",
                  trials=None, extra=None):
    payload = {"experiment": experiment, "records": records,
               "trials": len(records) if trials is None else trials}
    if version is not None:
        payload["version"] = version
    payload.update(extra or {})
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def record(trial, status="ok", value=1.5, **fields):
    base = {"trial": trial, "seed": 1000 + trial, "status": status,
            "attempts": 1, "value": value if status == "ok" else None,
            "error": "" if status == "ok" else f"fault:{status}"}
    base.update(fields)
    return base


# -- version tolerance -------------------------------------------------------

def test_versionless_journal_loads_as_v1(tmp_path):
    path = write_journal(tmp_path / "j.json",
                         [record(0), record(1, status="crash")],
                         version=None)
    data = load_report_data(path)
    journal = data.journals[0]
    assert (journal.version, journal.trials) == (1, 2)
    assert journal.completed == 1 and journal.failures == 1
    assert journal.taxonomy() == {"crash": 1}


def test_v2_journal_with_wall_and_metrics_loads(tmp_path):
    rows = [record(0, duration_wall_s=0.5, steps=100,
                   metrics={"sim.steps": 100.0}),
            record(1, duration_wall_s=0.7, steps=140,
                   metrics={"sim.steps": 140.0})]
    path = write_journal(tmp_path / "j.json", rows, version=2)
    journal = load_report_data(path).journals[0]
    assert journal.version == 2
    assert journal.merged_metrics() == {"sim.steps": 240.0}


def test_live_v3_journal_loads_without_importing_trial_record(tmp_path):
    runner = RobustTrialRunner(trials=5, experiment="live", max_attempts=1,
                               journal_path=tmp_path / "live.json")
    report = runner.run(crashy_trial)
    journal = load_report_data(tmp_path / "live.json").journals[0]
    assert journal.version == JOURNAL_VERSION
    assert journal.completed == report.completed
    assert journal.failures == report.failures
    assert sum(journal.taxonomy().values()) == report.failures


def test_records_are_sorted_by_trial_on_load(tmp_path):
    path = write_journal(tmp_path / "j.json",
                         [record(2), record(0), record(1)])
    journal = load_report_data(path).journals[0]
    assert [r["trial"] for r in journal.records] == [0, 1, 2]


# -- input resolution --------------------------------------------------------

def test_directory_scan_collects_journals_and_runlog(tmp_path):
    write_journal(tmp_path / "a.json", [record(0)], experiment="a")
    write_journal(tmp_path / "b.json", [record(0)], experiment="b")
    (tmp_path / "not-a-journal.json").write_text('{"other": true}')
    with RunLog(tmp_path / "run.jsonl") as runlog:
        runlog.emit("run_start", experiment="a", trials=1)
    data = load_report_data(tmp_path)
    assert [j.experiment for j in data.journals] == ["a", "b"]
    assert data.runlog_path == tmp_path / "run.jsonl"
    assert data.events[0]["event"] == "run_start"


def test_runlog_path_pulls_in_sibling_journals(tmp_path):
    write_journal(tmp_path / "a.json", [record(0)], experiment="a")
    with RunLog(tmp_path / "run.jsonl") as runlog:
        runlog.emit("run_start", experiment="a", trials=1)
    data = load_report_data(tmp_path / "run.jsonl")
    assert len(data.journals) == 1 and len(data.events) == 1


def test_strict_single_file_errors(tmp_path):
    (tmp_path / "bad.json").write_text("{not json")
    with pytest.raises(ValueError, match="unreadable journal"):
        load_report_data(tmp_path / "bad.json")
    (tmp_path / "other.json").write_text('{"other": 1}')
    with pytest.raises(ValueError, match="not a trial journal"):
        load_report_data(tmp_path / "other.json")
    with pytest.raises(FileNotFoundError):
        load_report_data(tmp_path / "missing.json")
    with pytest.raises(ValueError, match="no journals and no runlog"):
        load_report_data(tmp_path / ".." / tmp_path.name)  # empty-ish dir
        # (the dir contains only non-journal json files)


# -- runlog digestion --------------------------------------------------------

CHAOS_EVENTS = [
    {"event": "run_start", "experiment": "e1", "trials": 2},
    {"event": "task_dispatch", "index": 0, "attempt": 0},
    {"event": "trial_complete", "trial": 0, "status": "ok",
     "host": {"wall_s": 0.25}},
    {"event": "task_retry", "index": 1, "kind": "worker_crash",
     "error": "died"},
    {"event": "pool_rebuild", "workers": 2},
    {"event": "task_complete", "index": 1},
    {"event": "trial_complete", "trial": 1, "status": "ok",
     "host": {"wall_s": 0.75}},
    {"event": "run_end", "completed": 2},
]


def test_host_wall_and_timeline_extraction():
    walls = host_wall_by_trial(CHAOS_EVENTS)
    assert walls == {"e1": {0: 0.25, 1: 0.75}}
    timeline = supervision_timeline(CHAOS_EVENTS)
    assert timeline == [
        ("e1", "task_retry(error=died, index=1, kind=worker_crash)"),
        ("e1", "pool_rebuild(workers=2)"),
    ]
    assert dispatch_counts(CHAOS_EVENTS) == {"task_dispatch": 1,
                                             "task_complete": 1}


def test_cache_counts_and_line():
    events = [{"event": "cache_hit"}, {"event": "cache_hit"},
              {"event": "cache_miss"}, {"event": "cache_store"},
              {"event": "trial_complete"}]
    counts = cache_counts(events)
    assert counts == {"cache_hit": 2, "cache_miss": 1, "cache_store": 1}
    assert cache_line(counts) == "2 hits, 1 misses, 1 stores (67% hit ratio)"
    assert cache_line(cache_counts(CHAOS_EVENTS)) is None  # no cache traffic


def test_renderers_show_cache_traffic_only_when_present(tmp_path):
    data = ReportData(events=[
        {"event": "run_start", "experiment": "e", "trials": 1},
        {"event": "cache_hit", "index": 0},
        {"event": "trial_complete", "trial": 0, "status": "ok"},
    ])
    assert "result cache: 1 hits, 0 misses" in render_text(data)
    assert "result cache: 1 hits, 0 misses" in render_html(data)
    quiet = ReportData(events=[
        {"event": "run_start", "experiment": "e", "trials": 1},
    ])
    assert "result cache" not in render_text(quiet)
    assert "result cache" not in render_html(quiet)


# -- renderers ---------------------------------------------------------------

def chaos_report_data(tmp_path):
    """A real chaos run with a quarantined trial, journaled + runlogged."""
    plan = ChaosPlan(faults=tuple(
        ChaosFault(index=1, kind=CHAOS_CRASH, attempt=a) for a in range(9)))
    executor = ChaosExecutor(2, plan, max_task_retries=1,
                             poll_interval_s=0.02)
    executor.runlog = RunLog(tmp_path / "run.jsonl")
    runner = RobustTrialRunner(trials=3, experiment="chaos",
                               journal_path=tmp_path / "chaos.json",
                               executor=executor)
    report = runner.run(crashy_trial)
    executor.runlog.close()
    assert report.quarantined == 1
    return load_report_data(tmp_path)


def test_text_report_covers_chaos_run(tmp_path):
    data = chaos_report_data(tmp_path)
    text = render_text(data)
    assert "experiment chaos (journal v3, 3 trials)" in text
    assert "quarantined" in text           # taxonomy row from the journal
    assert "pool_rebuild(workers=2)" in text
    assert "quarantine(" in text           # supervision timeline entry
    assert "slowest:" in text and "wall_s" in text
    assert text.endswith("\n")


def test_text_report_falls_back_to_steps_without_runlog(tmp_path):
    rows = [record(0, steps=500), record(1, steps=900)]
    path = write_journal(tmp_path / "j.json", rows)
    text = render_text(load_report_data(path))
    assert "slowest: trial 1 (900 steps), trial 0 (500 steps)" in text
    assert "no runlog found" in text


def test_text_report_is_deterministic(tmp_path):
    data = chaos_report_data(tmp_path)
    assert render_text(data) == render_text(load_report_data(tmp_path))


def test_html_report_is_single_file_and_escaped(tmp_path):
    rows = [record(0, status="error<script>", error="<b>boom</b>")]
    write_journal(tmp_path / "j.json", rows,
                  experiment="exp<&>")
    html = render_html(load_report_data(tmp_path / "j.json"))
    assert html.startswith("<!DOCTYPE html>")
    assert "<style>" in html               # inline CSS ...
    assert "href=" not in html and "src=" not in html  # ... no external refs
    assert "exp&lt;&amp;&gt;" in html
    assert "&lt;b&gt;boom&lt;/b&gt;" in html
    assert "<script>" not in html


def test_html_report_renders_chaos_timeline_table(tmp_path):
    data = chaos_report_data(tmp_path)
    html = render_html(data)
    assert "<table" in html
    assert "supervision timeline" in html
    assert "quarantine(" in html
    assert 'class="bad"' in html           # the quarantined trial's row


def test_top_k_limits_slowest_list():
    journal = JournalView(path=None, version=3, experiment="e", trials=4,
                          records=[record(i, steps=i * 100) for i in
                                   range(4)])
    text = render_text(ReportData(journals=[journal]), top_k=1)
    assert "slowest: trial 3 (300 steps)" in text
    assert "trial 2 (200" not in text


def test_histograms_render_with_bucket_quantiles(tmp_path):
    hist = {"count": 4, "sum": 10.0,
            "buckets": {"1": 1, "5": 2, "+Inf": 1}}
    rows = [record(0, metrics={"plt.ms": hist})]
    text = render_text(load_report_data(
        write_journal(tmp_path / "j.json", rows)))
    assert "plt.ms: n=4 sum=10.000 mean=2.500 p50<=5 p95<=+Inf" in text


# -- CLI ---------------------------------------------------------------------

def test_report_cli_text_to_stdout(tmp_path, capsys):
    write_journal(tmp_path / "j.json", [record(0)])
    assert report_main([str(tmp_path / "j.json")]) == 0
    out = capsys.readouterr().out
    assert out.startswith("run report")


def test_report_cli_html_to_file(tmp_path, capsys):
    write_journal(tmp_path / "j.json", [record(0)])
    out_path = tmp_path / "nested" / "report.html"
    assert report_main([str(tmp_path), "--format", "html",
                        "--out", str(out_path)]) == 0
    assert out_path.read_text().startswith("<!DOCTYPE html>")
    assert f"[wrote {out_path}]" in capsys.readouterr().out


def test_report_cli_error_paths(tmp_path, capsys):
    assert report_main([str(tmp_path / "nope.json")]) == 1
    assert "error:" in capsys.readouterr().err
    write_journal(tmp_path / "j.json", [record(0)])
    assert report_main([str(tmp_path / "j.json"), "--top", "-1"]) == 2
    assert "--top cannot be negative" in capsys.readouterr().err
