"""Kernel hardening: deadlock detection and step budgets."""

from __future__ import annotations

import pytest

from repro.sim import Environment, SimDeadlock, SimulationError, StepBudgetExceeded


def test_deadlock_on_awaited_event_that_cannot_fire():
    env = Environment()
    blocker = env.event()

    def stuck(env, blocker):
        yield blocker

    env.process(stuck(env, blocker))
    with pytest.raises(SimDeadlock) as exc_info:
        env.run(blocker)
    deadlock = exc_info.value
    assert isinstance(deadlock, SimulationError)
    assert "t=0.000000" in str(deadlock)
    assert deadlock.now == 0.0
    assert "stuck" in deadlock.live


def test_deadlock_reports_sim_time_of_the_stall():
    env = Environment()

    def stuck(env):
        yield env.timeout(3.5)
        yield env.event()  # never fires

    env.process(stuck(env))
    with pytest.raises(SimDeadlock) as exc_info:
        env.run()
    assert exc_info.value.now == pytest.approx(3.5)
    assert "t=3.500000" in str(exc_info.value)


def test_finite_horizon_does_not_raise_on_pending_processes():
    env = Environment()

    def waits_forever(env):
        yield env.event()

    env.process(waits_forever(env))
    assert env.run(until=10.0) is None
    assert env.now == 10.0
    assert env.live_process_count == 1


def test_clean_completion_does_not_deadlock():
    env = Environment()

    def finishes(env):
        yield env.timeout(1.0)

    env.process(finishes(env))
    env.run()
    assert env.live_process_count == 0


def test_step_budget_exceeded_in_event_form():
    env = Environment()

    def spinner(env):
        while True:
            yield env.timeout(1.0)

    def target(env):
        yield env.timeout(1e9)

    env.process(spinner(env))
    proc = env.process(target(env))
    with pytest.raises(StepBudgetExceeded) as exc_info:
        env.run(proc, max_steps=50)
    assert exc_info.value.steps == 50
    assert "50" in str(exc_info.value)


def test_step_budget_exceeded_in_horizon_form():
    env = Environment()

    def spinner(env):
        while True:
            yield env.timeout(0.001)

    env.process(spinner(env))
    with pytest.raises(StepBudgetExceeded):
        env.run(until=100.0, max_steps=10)


def test_step_budget_allows_completion_under_budget():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return 42

    proc = env.process(quick(env))
    assert env.run(proc, max_steps=100) == 42


def test_max_steps_validation():
    env = Environment()
    with pytest.raises(ValueError):
        env.run(max_steps=0)


def test_live_process_count_tracks_termination():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    def slow(env):
        yield env.timeout(5.0)

    env.process(quick(env))
    env.process(slow(env))
    assert env.live_process_count == 2
    env.run(until=2.0)
    assert env.live_process_count == 1
    env.run(until=6.0)
    assert env.live_process_count == 0


# -- deadlock wait-target reporting -----------------------------------------

def test_deadlock_reports_each_stuck_process_wait_target():
    env = Environment()
    blocker = env.event()

    def waits_on_event(env, blocker):
        yield blocker

    def waits_on_process(env, other):
        yield other

    first = env.process(waits_on_event(env, blocker))
    env.process(waits_on_process(env, first))
    with pytest.raises(SimDeadlock) as exc_info:
        env.run(blocker)
    deadlock = exc_info.value
    assert deadlock.waiting == (
        "waits_on_event waiting on <Event>",
        "waits_on_process waiting on <Process waits_on_event>",
    )
    # The message carries the same detail, address-free.
    message = str(deadlock)
    assert "waits_on_event waiting on <Event>" in message
    assert "0x" not in message  # no id()/memory addresses anywhere


def test_deadlock_waiting_reprs_are_deterministic():
    def run_once():
        env = Environment()

        def stuck(env):
            yield env.event()

        env.process(stuck(env))
        with pytest.raises(SimDeadlock) as exc_info:
            env.run()
        return str(exc_info.value), exc_info.value.waiting

    assert run_once() == run_once()
