"""The access link between the phone and the LAN server.

A single bottleneck link models the Aruba AP of the paper's testbed.  The
nominal 72 Mbps 802.11n PHY rate yields ≈48 Mbps of TCP goodput once MAC
framing, ACKs and contention are paid — the ceiling Fig 6 shows at high
clocks — so :class:`LinkSpec` is expressed directly in achievable goodput.

Transmission is FIFO: a transfer holds the link for its serialization time.
Because every flow sends in bounded chunks, FIFO interleaving approximates
the per-flow fair share of a real queue at the timescales we report.

Degradation hooks: the link exposes a small mutable overlay on top of its
immutable :class:`LinkSpec` — packet loss (retransmission inflation), a
rate factor, an extra per-transfer delay, and an up/down state.  Fault
injectors (:mod:`repro.faults.link`) drive these over simulated time; the
spec itself stays the clean-LAN baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.obs import metrics_of, tracer_of
from repro.sim import Environment, Event, Resource


@dataclass(frozen=True)
class LinkSpec:
    """Capacity/RTT/loss of the testbed path (defaults: the paper's LAN)."""

    goodput_bps: float = 48.5e6
    rtt_s: float = 0.010
    loss: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.goodput_bps) or self.goodput_bps <= 0:
            raise ValueError(
                f"goodput must be positive and finite, got {self.goodput_bps!r}"
            )
        if not math.isfinite(self.rtt_s) or self.rtt_s < 0:
            raise ValueError(
                f"RTT must be non-negative and finite, got {self.rtt_s!r}"
            )
        if not 0 <= self.loss < 1:
            raise ValueError(f"loss must lie in [0, 1), got {self.loss!r}")

    @property
    def bytes_per_s(self) -> float:
        return self.goodput_bps / 8.0

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth–delay product."""
        return self.bytes_per_s * self.rtt_s


class Link:
    """Shared FIFO bottleneck; ``transmit`` blocks for the serialization time."""

    def __init__(self, env: Environment, spec: LinkSpec = LinkSpec()):
        self.env = env
        self.spec = spec
        self._line = Resource(env, capacity=1)
        self._bytes_carried = 0.0
        # Observability handles, captured once (no-op when not installed).
        self._tracer = tracer_of(env)
        metrics = metrics_of(env)
        self._m_tx_bytes = metrics.counter("net.link.tx_bytes")
        self._m_transfers = metrics.counter("net.link.transfers")
        self._m_retx_bytes = metrics.counter("net.link.retx_bytes")
        self._m_outage_blocks = metrics.counter("net.link.outage_blocks")
        # Mutable degradation overlay (driven by fault injectors).
        self._loss = spec.loss
        self._rate_factor = 1.0
        self._extra_delay_s = 0.0
        self._restore_event: Optional[Event] = None

    @property
    def bytes_carried(self) -> float:
        """Total payload bytes delivered over the link so far."""
        return self._bytes_carried

    # -- degradation overlay ------------------------------------------------

    @property
    def loss(self) -> float:
        """Current effective loss rate (baseline spec.loss unless degraded)."""
        return self._loss

    @property
    def rate_factor(self) -> float:
        """Current capacity multiplier in (0, 1] applied by injectors."""
        return self._rate_factor

    @property
    def extra_delay_s(self) -> float:
        """Per-transfer latency penalty currently in effect."""
        return self._extra_delay_s

    @property
    def is_down(self) -> bool:
        """True while the link is in an outage."""
        return self._restore_event is not None

    def set_loss(self, loss: float) -> None:
        """Set the effective loss rate; lost bytes are retransmitted."""
        if not 0 <= loss < 1:
            raise ValueError(f"loss must lie in [0, 1), got {loss!r}")
        self._loss = loss

    def set_rate_factor(self, factor: float) -> None:
        """Scale the link capacity by ``factor`` in (0, 1]."""
        if not math.isfinite(factor) or not 0 < factor <= 1:
            raise ValueError(f"rate factor must lie in (0, 1], got {factor!r}")
        self._rate_factor = factor

    def set_extra_delay(self, delay_s: float) -> None:
        """Add ``delay_s`` of one-way latency to every transfer."""
        if not math.isfinite(delay_s) or delay_s < 0:
            raise ValueError(
                f"extra delay must be non-negative and finite, got {delay_s!r}"
            )
        self._extra_delay_s = delay_s

    def take_down(self) -> None:
        """Begin an outage: transfers block until :meth:`bring_up`."""
        if self._restore_event is None:
            self._restore_event = self.env.event()

    def bring_up(self) -> None:
        """End an outage and release blocked transfers."""
        if self._restore_event is not None:
            event, self._restore_event = self._restore_event, None
            event.succeed()

    # -- transmission --------------------------------------------------------

    def serialization_time(self, nbytes: float) -> float:
        """Time the line is held to carry ``nbytes`` at the baseline rate."""
        return nbytes / self.spec.bytes_per_s

    def effective_serialization_time(self, nbytes: float) -> float:
        """Serialization time with loss retransmissions and rate degradation."""
        wire_bytes = nbytes / (1.0 - self._loss)
        return wire_bytes / (self.spec.bytes_per_s * self._rate_factor)

    def transmit(self, nbytes: float):
        """Process: occupy the line for ``nbytes`` of payload."""
        if not isinstance(nbytes, (int, float)) or not math.isfinite(nbytes):
            raise ValueError(
                f"transmit needs a finite numeric byte count, got {nbytes!r}"
            )
        if nbytes <= 0:
            raise ValueError(
                f"transmit needs a positive byte count, got {nbytes!r}"
            )
        with self._tracer.span("net.link.transmit", "net",
                               {"nbytes": float(nbytes)}):
            with self._line.request() as grant:
                yield grant
                if self._restore_event is not None:
                    self._m_outage_blocks.inc()
                    self._tracer.instant("net.link.blocked", "net")
                while self._restore_event is not None:
                    yield self._restore_event
                if self._extra_delay_s > 0:
                    yield self.env.timeout(self._extra_delay_s)
                yield self.env.timeout(
                    self.effective_serialization_time(nbytes))
                self._bytes_carried += nbytes
                self._m_tx_bytes.inc(float(nbytes))
                self._m_transfers.inc()
                if self._loss > 0:
                    # Wire bytes beyond the payload are retransmissions.
                    self._m_retx_bytes.inc(
                        float(nbytes) * self._loss / (1.0 - self._loss))


__all__ = ["Link", "LinkSpec"]
