"""Command-line interface: regenerate any paper figure from a shell.

Usage::

    python -m repro list                 # what can be regenerated
    python -m repro fig6                 # print Fig 6's series
    python -m repro fig3a --pages 10     # bigger corpus
    python -m repro fig2a --csv out/     # also dump CSV data
    python -m repro joint                # §6 extension studies
    python -m repro faults               # degraded-condition sweeps
    python -m repro faults --jobs 4      # same rows, 4 worker processes
    python -m repro faults --jobs 4 --task-timeout 300   # hung-task guard
    python -m repro faults --journal out/j --resume   # continue a run
    python -m repro lint --format json   # simlint static analysis
    python -m repro trace fig2a --out trace.json      # Perfetto trace
    python -m repro faults --journal out/j --progress # live progress line
    python -m repro report out/j         # run report from journal+runlog
    python -m repro perf check BENCH_obs.json         # perf budget check
    python -m repro faults --cache out/cache          # warm re-runs are free
    python -m repro cache stats out/cache             # inspect the store
    python -m repro population --sessions 1000 --jobs 4   # fleet simulation

Every figure command prints the same rows the corresponding benchmark
asserts on, at a configurable scale.  ``faults`` runs the fault-injection
robustness study (see :mod:`repro.faults`); ``lint`` runs the
determinism / sim-invariant static-analysis pass (see :mod:`repro.lint`);
``trace`` runs one instrumented scenario and exports a Chrome trace_event
JSON for Perfetto (see :mod:`repro.core.tracing`); ``report`` renders a
self-contained run report (see :mod:`repro.obs.report`); ``perf``
inspects the perf-trajectory store (see :mod:`repro.obs.perfstore`).

Run-level observability (``docs/observability.md``): ``--runlog PATH``
streams run events to a JSONL file (auto-enabled as ``run.jsonl`` beside
``--journal`` for ``faults``), and ``--progress`` renders a live status
line on stderr.  Both leave journal bytes and stdout untouched, so the
determinism contract is unaffected.

Result caching (``docs/caching.md``): ``--cache DIR`` (or the
``REPRO_CACHE`` environment variable) attaches a content-addressed
trial cache — warm re-runs replay stored results and print the same
bytes; ``python -m repro cache stats|gc|clear`` maintains the store.

Error paths exit nonzero with a one-line ``error: ...`` message on
stderr — no tracebacks.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Optional

from repro.analysis import render_table
from repro.analysis.export import write_csv
from repro.analysis.stats import median


def _maybe_csv(args, name: str, headers, rows) -> None:
    if args.csv:
        path = write_csv(Path(args.csv) / f"{name}.csv", headers, rows)
        print(f"[wrote {path}]")


def _executor(args):
    """The trial executor selected by ``--jobs`` (serial for 1).

    For ``--jobs N > 1`` this is a supervised executor (worker-crash
    recovery, hung-task timeout, poison-task quarantine, SIGINT/SIGTERM
    drain); ``--task-timeout`` and ``--max-task-retries`` tune it.

    One instance per invocation (cached on ``args``): the run's
    :class:`~repro.obs.runlog.RunLog` is attached here, and ``main``
    reads the accumulated supervision totals back off the same instance
    for the post-run ``supervision:`` summary.
    """
    cached = getattr(args, "_executor_instance", None)
    if cached is not None:
        return cached
    from repro.parallel import get_executor

    executor = get_executor(
        args.jobs,
        task_timeout_s=args.task_timeout,
        max_task_retries=args.max_task_retries,
    )
    runlog = getattr(args, "_runlog", None)
    if runlog is not None:
        executor.runlog = runlog
    cache = getattr(args, "_cache", None)
    if cache is not None:
        # Studies resolve the cache off the executor the same way they
        # resolve the runlog — one attachment covers a whole command.
        executor.cache = cache
    args._executor_instance = executor
    return executor


def _build_runlog(args):
    """The run's :class:`~repro.obs.runlog.RunLog`, or ``None`` when off.

    Enabled by ``--runlog PATH``, by ``--progress`` (pathless: events
    feed the renderer only), or implicitly for journaled ``faults`` runs
    (``run.jsonl`` beside the journal, the ``report`` command's input).
    """
    from repro.obs.progress import ProgressRenderer
    from repro.obs.runlog import RUNLOG_NAME, RunLog

    path = args.runlog
    if path is None and args.journal and args.figure == "faults":
        path = str(Path(args.journal) / RUNLOG_NAME)
    if path is None and not args.progress:
        return None
    listeners = [ProgressRenderer().handle] if args.progress else []
    return RunLog(path, listeners=listeners)


def cmd_table1(args) -> None:
    from repro.device import TABLE1_DEVICES

    headers = ["device", "soc", "cores", "os", "clock_mhz", "ram_gb", "cost_usd"]
    rows = [
        [s.name, s.soc, s.n_cores, s.os_version,
         f"{s.min_clock_mhz}-{s.max_clock_mhz}", s.memory_gb, s.cost_usd]
        for s in TABLE1_DEVICES
    ]
    print(render_table(headers, rows))
    _maybe_csv(args, "table1", headers, rows)


def cmd_fig1(args) -> None:
    from repro.core.studies import evolution_timeline

    points = evolution_timeline(n_pages=max(args.pages // 2, 1))
    headers = ["year", "plt_s", "clock_ghz", "cores", "memory_gb",
               "os_version", "page_mb"]
    rows = [[p.year, f"{p.plt_s:.2f}", p.clock_ghz, p.cores, p.memory_gb,
             p.os_version, f"{p.page_size_mb:.1f}"] for p in points]
    print(render_table(headers, rows))
    _maybe_csv(args, "fig1", headers, rows)


def cmd_fig2(args) -> None:
    from repro.core.studies import (
        RtcStudy, RtcStudyConfig, VideoStudy, VideoStudyConfig,
        WebStudy, WebStudyConfig,
    )
    from repro.rtc import CallConfig
    from repro.video import VideoSpec

    executor = _executor(args)
    web = WebStudy(WebStudyConfig(n_pages=args.pages, trials=args.trials,
                                  executor=executor))
    video = VideoStudy(VideoStudyConfig(
        clip=VideoSpec(duration_s=args.media_s), trials=args.trials,
        executor=executor))
    rtc = RtcStudy(RtcStudyConfig(
        call=CallConfig(call_duration_s=min(args.media_s, 20)),
        trials=args.trials, executor=executor))
    web_rows = {s.name: v for s, v in web.qoe_across_devices()}
    video_rows = {p.label: p for p in video.qoe_across_devices()}
    rtc_rows = {p.label: p for p in rtc.qoe_across_devices()}
    headers = ["device", "plt_s", "plt_std", "startup_s", "stall_ratio", "fps"]
    rows = [
        [name, f"{web_rows[name].mean:.2f}", f"{web_rows[name].stdev:.2f}",
         f"{video_rows[name].startup.mean:.2f}",
         f"{video_rows[name].stall_ratio.mean:.3f}",
         f"{rtc_rows[name].frame_rate.mean:.1f}"]
        for name in web_rows
    ]
    print(render_table(headers, rows))
    _maybe_csv(args, "fig2", headers, rows)


def cmd_fig3a(args) -> None:
    from repro.core.studies import WebStudy, WebStudyConfig
    from repro.device import NEXUS4_LADDER

    study = WebStudy(WebStudyConfig(n_pages=args.pages, trials=args.trials,
                                    executor=_executor(args)))
    points = study.plt_vs_clock(ladder=NEXUS4_LADDER)
    headers = ["clock_mhz", "plt_s", "plt_std", "cp_compute_s",
               "cp_network_s", "scripting_share"]
    rows = [[p.clock_mhz, f"{p.plt.mean:.2f}", f"{p.plt.stdev:.2f}",
             f"{p.compute_time.mean:.2f}", f"{p.network_time.mean:.2f}",
             f"{p.scripting_share:.3f}"] for p in points]
    print(render_table(headers, rows))
    _maybe_csv(args, "fig3a", headers, rows)


def cmd_fig3bcd(args) -> None:
    from repro.core.studies import WebStudy, WebStudyConfig

    study = WebStudy(WebStudyConfig(n_pages=args.pages, trials=args.trials,
                                    executor=_executor(args)))
    print("Fig 3b (memory):")
    mem_rows = [[gb, f"{s.mean:.2f}"] for gb, s in study.plt_vs_memory()]
    print(render_table(["memory_gb", "plt_s"], mem_rows))
    print("\nFig 3c (cores):")
    core_rows = [[n, f"{s.mean:.2f}"] for n, s in study.plt_vs_cores()]
    print(render_table(["cores", "plt_s"], core_rows))
    print("\nFig 3d (governors):")
    gov_rows = [[g, f"{s.mean:.2f}"] for g, s in study.plt_vs_governor()]
    print(render_table(["governor", "plt_s"], gov_rows))
    _maybe_csv(args, "fig3b", ["memory_gb", "plt_s"], mem_rows)
    _maybe_csv(args, "fig3c", ["cores", "plt_s"], core_rows)
    _maybe_csv(args, "fig3d", ["governor", "plt_s"], gov_rows)


def cmd_fig4(args) -> None:
    from repro.core.studies import VideoStudy, VideoStudyConfig
    from repro.device import NEXUS4_LADDER
    from repro.video import VideoSpec

    study = VideoStudy(VideoStudyConfig(
        clip=VideoSpec(duration_s=args.media_s), trials=args.trials,
        executor=_executor(args)))
    sweeps = {
        "fig4a_clock": study.vs_clock(ladder=NEXUS4_LADDER),
        "fig4b_memory": study.vs_memory(),
        "fig4c_cores": study.vs_cores(),
        "fig4d_governor": study.vs_governor(),
    }
    headers = ["x", "startup_s", "stall_ratio"]
    for name, points in sweeps.items():
        print(f"\n{name}:")
        rows = [[p.label, f"{p.startup.mean:.2f}",
                 f"{p.stall_ratio.mean:.3f}"] for p in points]
        print(render_table(headers, rows))
        _maybe_csv(args, name, headers, rows)


def cmd_fig5(args) -> None:
    from repro.core.studies import RtcStudy, RtcStudyConfig
    from repro.device import NEXUS4_LADDER
    from repro.rtc import CallConfig

    study = RtcStudy(RtcStudyConfig(
        call=CallConfig(call_duration_s=min(args.media_s, 20)),
        trials=args.trials, executor=_executor(args)))
    sweeps = {
        "fig5a_clock": study.vs_clock(ladder=NEXUS4_LADDER),
        "fig5b_memory": study.vs_memory(),
        "fig5c_cores": study.vs_cores(),
        "fig5d_governor": study.vs_governor(),
    }
    headers = ["x", "setup_delay_s", "frame_rate_fps"]
    for name, points in sweeps.items():
        print(f"\n{name}:")
        rows = [[p.label, f"{p.setup_delay.mean:.1f}",
                 f"{p.frame_rate.mean:.1f}"] for p in points]
        print(render_table(headers, rows))
        _maybe_csv(args, name, headers, rows)


def cmd_fig6(args) -> None:
    from repro.core.studies import throughput_vs_clock

    points = throughput_vs_clock(duration_s=max(args.media_s / 10, 5))
    headers = ["clock_mhz", "throughput_mbps"]
    rows = [[p.clock_mhz, f"{p.throughput_mbps:.2f}"] for p in points]
    print(render_table(headers, rows))
    _maybe_csv(args, "fig6", headers, rows)


def cmd_fig7(args) -> None:
    from repro.core.studies import OffloadStudy, OffloadStudyConfig

    study = OffloadStudy(OffloadStudyConfig(n_pages=args.pages,
                                            trials=args.trials))
    cmp = study.compare_default_governor()
    print("Fig 7a (default governor):")
    rows_a = [
        ["CPU", f"{cmp.cpu_scripting.mean:.2f}", f"{cmp.cpu_eplt.mean:.2f}"],
        ["DSP", f"{cmp.dsp_scripting.mean:.2f}", f"{cmp.dsp_eplt.mean:.2f}"],
    ]
    print(render_table(["executor", "scripting_s", "eplt_s"], rows_a))
    print(f"ePLT improvement: {cmp.eplt_improvement:.1%}")
    cpu_w, dsp_w = study.power_distributions()
    print(f"\nFig 7b: median power CPU {median(cpu_w):.2f} W, "
          f"DSP {median(dsp_w):.2f} W "
          f"({median(cpu_w) / median(dsp_w):.1f}x)")
    print("\nFig 7c (pinned low clocks):")
    rows_c = [[p.clock_mhz, f"{p.cpu_eplt.mean:.2f}",
               f"{p.dsp_eplt.mean:.2f}", f"{p.improvement:.1%}"]
              for p in study.eplt_vs_clock()]
    print(render_table(["clock_mhz", "cpu_eplt_s", "dsp_eplt_s", "win"],
                       rows_c))
    _maybe_csv(args, "fig7a", ["executor", "scripting_s", "eplt_s"], rows_a)
    _maybe_csv(args, "fig7c",
               ["clock_mhz", "cpu_eplt_s", "dsp_eplt_s", "win"], rows_c)


def cmd_joint(args) -> None:
    from repro.core.studies import (
        browsers_vs_clock, joint_network_device_grid, tls_overhead,
    )

    executor = _executor(args)
    print("Joint network x device grid:")
    headers = ["bandwidth_mbps", "clock_mhz", "plt_s", "bound"]
    rows = [
        [p.bandwidth_mbps, p.clock_mhz, f"{p.plt.mean:.2f}",
         "device" if p.device_bound else "network"]
        for p in joint_network_device_grid(n_pages=args.pages,
                                           executor=executor)
    ]
    print(render_table(headers, rows))
    _maybe_csv(args, "joint_grid", headers, rows)

    print("\nTLS overhead vs clock:")
    tls_rows = [
        [p.clock_mhz, f"{p.plt_tls.mean:.2f}", f"{p.plt_plain.mean:.2f}",
         f"{p.tls_overhead_frac:.1%}"]
        for p in tls_overhead(n_pages=args.pages, executor=executor)
    ]
    print(render_table(["clock_mhz", "plt_tls_s", "plt_plain_s",
                        "tls_share"], tls_rows))
    _maybe_csv(args, "tls_overhead",
               ["clock_mhz", "plt_tls_s", "plt_plain_s", "tls_share"],
               tls_rows)

    print("\nBrowser profiles vs clock:")
    table = browsers_vs_clock(n_pages=args.pages, executor=executor)
    browser_rows = [
        [name, f"{cols[384].mean:.2f}", f"{cols[1512].mean:.2f}",
         f"{cols[384].mean / cols[1512].mean:.2f}"]
        for name, cols in table.items()
    ]
    print(render_table(["browser", "plt@384", "plt@1512", "slowdown"],
                       browser_rows))
    _maybe_csv(args, "browsers",
               ["browser", "plt_384", "plt_1512", "slowdown"], browser_rows)


def cmd_faults(args) -> None:
    from repro.core.studies import FaultStudy, FaultStudyConfig
    from repro.video import VideoSpec

    config = FaultStudyConfig(
        n_pages=max(args.pages // 2, 2),
        trials=args.trials,
        clip=VideoSpec(duration_s=min(args.media_s, 30.0)),
        crash_probability=args.crash_probability,
        journal_dir=Path(args.journal) if args.journal else None,
        executor=_executor(args),
    )
    study = FaultStudy(config)
    headers = ["condition", "mean", "std", "n", "failed"]

    def rows(points):
        # fmt_mean/fmt_stdev render "n/a" when every trial of a sweep
        # point failed — never a fabricated 0.000 latency.
        return [[p.label, p.metric.fmt_mean(), p.metric.fmt_stdev(),
                 p.metric.n, p.metric.failures] for p in points]

    print("Web PLT vs GE burst loss:")
    web_ge = rows(study.plt_vs_burst_loss(resume=args.resume))
    print(render_table(headers, web_ge))
    print("\nWeb PLT vs thermal cap:")
    web_th = rows(study.plt_vs_thermal_cap(resume=args.resume))
    print(render_table(headers, web_th))
    print("\nVideo stall ratio vs GE burst loss:")
    vid_ge = rows(study.rebuffer_vs_burst_loss(resume=args.resume))
    print(render_table(headers, vid_ge))
    print("\nVideo stall ratio vs thermal cap (§3.2: read-ahead keeps "
          "this flat):")
    vid_th = rows(study.rebuffer_vs_thermal_cap(resume=args.resume))
    print(render_table(headers, vid_th))
    print("\nVideo startup latency vs thermal cap:")
    vid_su = rows(study.startup_vs_thermal_cap(resume=args.resume))
    print(render_table(headers, vid_su))
    _maybe_csv(args, "faults_web_ge", headers, web_ge)
    _maybe_csv(args, "faults_video_startup", headers, vid_su)
    _maybe_csv(args, "faults_web_thermal", headers, web_th)
    _maybe_csv(args, "faults_video_ge", headers, vid_ge)
    _maybe_csv(args, "faults_video_thermal", headers, vid_th)


_COMMANDS = {
    "faults": cmd_faults,
    "table1": cmd_table1,
    "fig1": cmd_fig1,
    "fig2": cmd_fig2,
    "fig3a": cmd_fig3a,
    "fig3bcd": cmd_fig3bcd,
    "fig4": cmd_fig4,
    "fig5": cmd_fig5,
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "joint": cmd_joint,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures from 'Impact of Device Performance "
                    "on Mobile Internet QoE' (IMC 2018).",
    )
    parser.add_argument("figure",
                        choices=sorted(_COMMANDS) + ["list"],
                        help="which figure to regenerate")
    parser.add_argument("--pages", type=int, default=5,
                        help="pages per corpus (paper scale: 50)")
    parser.add_argument("--trials", type=int, default=1,
                        help="seeded repetitions (paper scale: 20)")
    parser.add_argument("--media-s", type=float, default=60.0,
                        help="media session length in seconds (paper: 300)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for trial fan-out "
                             "(1 = serial; N > 1 is supervised — worker "
                             "crashes and hangs are retried, not fatal; "
                             "output is byte-identical for any value)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task wall-clock budget for supervised "
                             "fan-out; hung tasks are cancelled and "
                             "reassigned (requires --jobs > 1)")
    parser.add_argument("--max-task-retries", type=int, default=None,
                        metavar="K",
                        help="faulted dispatches before a task is "
                             "quarantined as failed (default 3; requires "
                             "--jobs > 1)")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write the series as CSV under DIR")
    parser.add_argument("--journal", metavar="DIR", default=None,
                        help="journal completed trials under DIR "
                             "(faults only; enables --resume)")
    parser.add_argument("--resume", action="store_true",
                        help="skip trials already journaled as ok "
                             "(faults only; requires --journal)")
    parser.add_argument("--crash-probability", type=float, default=0.0,
                        help="per-trial injected crash probability "
                             "(faults only)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed trial-result cache under "
                             "DIR (default: $REPRO_CACHE if set); warm "
                             "re-runs replay stored trials byte-for-byte")
    parser.add_argument("--runlog", metavar="PATH", default=None,
                        help="append run-level events (trial completions, "
                             "supervision actions) to PATH as JSONL; "
                             "defaults to run.jsonl beside --journal for "
                             "faults")
    parser.add_argument("--progress", action="store_true",
                        help="render a live progress line on stderr "
                             "(done/total, retries, quarantines, ETA)")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # The lint subcommand owns its flags (--format/--select/...), so it
        # is dispatched before the figure parser sees them.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        # Likewise for the trace subcommand (--out/--seed/--metrics-out).
        from repro.core.tracing import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "report":
        # And the report subcommand (--format/--out/--top).
        from repro.obs.report import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "perf":
        # And the perf-trajectory subcommand (show/check).
        from repro.obs.perfstore import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "cache":
        # And the cache-maintenance subcommand (stats/gc/clear).
        from repro.cache.cli import main as cache_main

        return cache_main(argv[1:])
    if argv and argv[0] == "population":
        # And the fleet-simulation subcommand (--sessions/--seed/...).
        from repro.population.cli import main as population_main

        return population_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.figure == "list":
        for name in sorted([*_COMMANDS, "cache", "lint", "trace", "report",
                            "perf", "population"]):
            print(name)
        return 0
    if args.trials < 1:
        print(f"error: --trials must be at least 1 (got {args.trials})",
              file=sys.stderr)
        return 2
    if args.pages < 1:
        print(f"error: --pages must be at least 1 (got {args.pages})",
              file=sys.stderr)
        return 2
    if args.media_s <= 0:
        print(f"error: --media-s must be positive (got {args.media_s})",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be at least 1 (got {args.jobs})",
              file=sys.stderr)
        return 2
    if args.task_timeout is not None and args.task_timeout <= 0:
        print(f"error: --task-timeout must be positive "
              f"(got {args.task_timeout})", file=sys.stderr)
        return 2
    if args.max_task_retries is not None and args.max_task_retries < 0:
        print(f"error: --max-task-retries cannot be negative "
              f"(got {args.max_task_retries})", file=sys.stderr)
        return 2
    if args.jobs == 1 and (args.task_timeout is not None
                           or args.max_task_retries is not None):
        print("error: --task-timeout/--max-task-retries require "
              "supervised fan-out (--jobs 2 or more)", file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal DIR", file=sys.stderr)
        return 2
    if not 0.0 <= args.crash_probability <= 1.0:
        print("error: --crash-probability must lie in [0, 1] "
              f"(got {args.crash_probability})", file=sys.stderr)
        return 2
    runlog = _build_runlog(args)
    if runlog is not None:
        args._runlog = runlog
    cache_dir = args.cache if args.cache is not None \
        else os.environ.get("REPRO_CACHE")
    if cache_dir:
        from repro.cache import TrialCache

        args._cache = TrialCache(Path(cache_dir))
    try:
        _COMMANDS[args.figure](args)
    except KeyboardInterrupt:
        # The supervised executor drains in-flight results and flushes
        # the journal before this propagates, so --resume picks up where
        # the interrupted sweep left off.
        print("interrupted: journaled trials are resumable via "
              "--journal DIR --resume", file=sys.stderr)
        return 130
    except Exception as error:  # noqa: BLE001 - one-line message, no traceback
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if runlog is not None:
            runlog.close()
        # Surface what the supervisor had to do.  stderr, not stdout:
        # stdout stays byte-identical across --jobs values (CI cmp's it).
        executor = getattr(args, "_executor_instance", None)
        totals = getattr(executor, "supervision_totals", None)
        if totals is not None and args.jobs >= 2:
            print(f"supervision: {totals.pool_rebuilds} rebuilds, "
                  f"{totals.task_retries} retries, "
                  f"{len(totals.quarantined)} quarantined", file=sys.stderr)
        cache = getattr(args, "_cache", None)
        if cache is not None and cache.stats.lookups:
            print(cache.stats.line(), file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
