"""Runlog overhead: an enabled run-level event stream must be ~free.

The runlog is the always-on flight recorder of journaled sweeps, so its
cost budget is strict: one flushed JSONL line per run-level event (a
handful per trial) against trials that each burn real event-loop work.
This benchmark runs the identical seeded batch through a
``RobustTrialRunner`` with the runlog disabled and enabled, asserts the
enabled run stays within 5% of the disabled one (with an absolute
jitter floor), and checks the determinism contract along the way: the
journal bytes must not change when logging is switched on.
"""

from __future__ import annotations

import os
import time

from repro.core.background import make_rng
from repro.core.experiments import RobustTrialRunner
from repro.obs.runlog import RunLog, read_runlog
from repro.parallel import get_executor
from repro.sim import Environment

TRIALS = 12
#: Allowed enabled-vs-disabled slowdown.
MAX_OVERHEAD = 0.05
#: Absolute jitter floor: differences below this are scheduler noise,
#: not logging cost.
JITTER_FLOOR_S = 0.5


def kernel_trial(seed: int) -> float:
    """~0.15s of pure event-loop work — figure-trial shaped."""
    env = Environment()
    rng = make_rng(seed)

    def spin():
        for _ in range(100_000):
            yield env.timeout(rng.uniform(0.1, 1.0))

    env.run(env.process(spin()))
    return env.now


def run_batch(journal_path, runlog=None) -> float:
    runner = RobustTrialRunner(trials=TRIALS, experiment="runlog-overhead",
                               journal_path=journal_path,
                               executor=get_executor(1), runlog=runlog)
    start = time.perf_counter()  # simlint: disable=DET001
    report = runner.run(kernel_trial)
    elapsed = time.perf_counter() - start  # simlint: disable=DET001
    assert report.failures == 0
    return elapsed


def test_runlog_overhead(tmp_path, fig_printer, perf_track):
    # Warm-up batch pays one-time import/alloc costs.
    run_batch(tmp_path / "warmup.json")
    off_s = run_batch(tmp_path / "off.json")
    with RunLog(tmp_path / "run.jsonl") as runlog:
        on_s = run_batch(tmp_path / "on.json", runlog=runlog)

    overhead = on_s / off_s - 1.0
    events = read_runlog(tmp_path / "run.jsonl")
    body = "\n".join([
        f"trials              {TRIALS}",
        f"host cores          {os.cpu_count() or 1}",
        f"runlog disabled     {off_s:8.3f} s",
        f"runlog enabled      {on_s:8.3f} s  ({len(events)} events)",
        f"overhead            {overhead:8.1%}  (budget {MAX_OVERHEAD:.0%})",
    ])
    fig_printer("Runlog overhead on a serial journaled batch", body)
    perf_track("obs.runlog.enabled_s", on_s, trials=TRIALS,
               events=len(events))

    # The stream is complete (run_start + one trial_complete per trial +
    # run_end) and the journal bytes are oblivious to it.
    assert len(events) == TRIALS + 2
    assert (tmp_path / "on.json").read_bytes() == \
        (tmp_path / "off.json").read_bytes()
    assert (on_s - off_s) < max(MAX_OVERHEAD * off_s, JITTER_FLOOR_S)
