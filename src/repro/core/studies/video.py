"""Video-streaming QoE studies (Figs 2b, 4a–4d)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.cache import TrialCache, cached_map
from repro.core.background import BackgroundLoad, make_rng
from repro.core.experiments import derive_seed
from repro.device import Device, DeviceSpec, GOVERNOR_CODES, NEXUS4, TABLE1_DEVICES
from repro.netstack import Link, LinkSpec
from repro.parallel import Executor, SerialExecutor, drop_quarantined
from repro.sim import Environment
from repro.video import StreamingPlayer, StreamingResult, VideoSpec


@dataclass
class VideoStudyConfig:
    """Scale knobs: the paper streams a 5-min FullHD clip 20 times."""

    clip: VideoSpec = field(default_factory=lambda: VideoSpec(duration_s=120.0))
    trials: int = 3
    link: LinkSpec = field(default_factory=LinkSpec)
    background_jitter: bool = True
    #: Trial dispatch layer; None means in-process serial execution.
    executor: Optional[Executor] = None
    #: Content-addressed result cache; None checks the executor for an
    #: attached one (see :mod:`repro.cache`).
    cache: Optional[TrialCache] = None


@dataclass
class StreamingPoint:
    """One figure x-position: start-up latency and stall ratio."""

    label: object
    startup: Summary
    stall_ratio: Summary


class VideoStudy:
    """Parameterized streaming sweeps on the simulated testbed."""

    def __init__(self, config: Optional[VideoStudyConfig] = None):
        self.config = config or VideoStudyConfig()
        self.executor = self.config.executor or SerialExecutor()

    def cache_params(self) -> dict:
        """Config facets a streaming result depends on (cache key input)."""
        return {"clip": self.config.clip, "link": self.config.link,
                "background_jitter": self.config.background_jitter}

    def stream_once(self, spec: DeviceSpec, seed: int,
                    **device_kwargs) -> StreamingResult:
        """One full streaming session on a fresh device."""
        env = Environment()
        device = Device(env, spec, **device_kwargs)
        if self.config.background_jitter:
            BackgroundLoad(env, device, make_rng(seed))
        player = StreamingPlayer(env, device, Link(env, self.config.link),
                                 self.config.clip)
        return env.run(env.process(player.run()))

    def _point(self, spec: DeviceSpec, label: object, experiment: str,
               **device_kwargs) -> StreamingPoint:
        seeds = [derive_seed(experiment, t)
                 for t in range(self.config.trials)]
        # Quarantined trials (supervised executors only) shrink n rather
        # than failing the sweep — same degradation as sim-level faults.
        results = drop_quarantined(cached_map(
            self.executor,
            _StreamTask(study=self, spec=spec, device_kwargs=device_kwargs),
            seeds, experiment=experiment, cache=self.config.cache,
        ))
        return StreamingPoint(
            label=label,
            startup=summarize([r.startup_latency_s for r in results]),
            stall_ratio=summarize([r.stall_ratio for r in results]),
        )

    def qoe_across_devices(
        self, devices: Sequence[DeviceSpec] = TABLE1_DEVICES
    ) -> list[StreamingPoint]:
        """Start-up latency / stall ratio per Table 1 device (Fig 2b)."""
        return [
            self._point(spec, spec.name, f"fig2b:{spec.name}", governor="OD")
            for spec in devices
        ]

    def vs_clock(self, spec: DeviceSpec = NEXUS4,
                 ladder: Optional[Sequence[int]] = None) -> list[StreamingPoint]:
        """Fig 4a: the DVFS ladder sweep."""
        ladder = ladder or spec.clusters[0].freqs_mhz
        return [
            self._point(spec, mhz, f"fig4a:{mhz}", pinned_mhz=mhz)
            for mhz in ladder
        ]

    def vs_memory(self, spec: DeviceSpec = NEXUS4,
                  sizes_gb: Sequence[float] = (0.5, 1.0, 1.5, 2.0)
                  ) -> list[StreamingPoint]:
        """Fig 4b: memory sweep."""
        return [
            self._point(spec, gb, f"fig4b:{gb}", governor="OD", memory_gb=gb)
            for gb in sizes_gb
        ]

    def vs_cores(self, spec: DeviceSpec = NEXUS4,
                 cores: Sequence[int] = (1, 2, 3, 4)) -> list[StreamingPoint]:
        """Fig 4c: core-count sweep."""
        return [
            self._point(spec, n, f"fig4c:{n}", governor="OD", online_cores=n)
            for n in cores
        ]

    def vs_governor(self, spec: DeviceSpec = NEXUS4,
                    governors: Sequence[str] = GOVERNOR_CODES
                    ) -> list[StreamingPoint]:
        """Fig 4d: governor sweep (PF IN US OD PW)."""
        return [
            self._point(spec, code, f"fig4d:{code}", governor=code)
            for code in governors
        ]


@dataclass
class _StreamTask:
    """Picklable per-trial task: one full streaming session."""

    study: VideoStudy
    spec: DeviceSpec
    device_kwargs: dict

    def __call__(self, seed: int) -> StreamingResult:
        return self.study.stream_once(self.spec, seed, **self.device_kwargs)


__all__ = ["StreamingPoint", "VideoStudy", "VideoStudyConfig"]
