"""Behaviour tests for the streaming player (Figs 2b, 4a–4d)."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2, by_name
from repro.netstack import Link
from repro.sim import Environment
from repro.video import PlayerConfig, StreamingPlayer, VideoSpec


def play(spec=NEXUS4, duration=60.0, config=None, **device_kwargs):
    env = Environment()
    device = Device(env, spec, **device_kwargs)
    player = StreamingPlayer(env, device, Link(env),
                             VideoSpec(duration_s=duration),
                             config or PlayerConfig())
    return env.run(env.process(player.run()))


def test_full_clip_plays(spec=NEXUS4):
    result = play(duration=30.0, pinned_mhz=1512)
    assert result.content_played_s == pytest.approx(30.0, abs=2.5)
    assert result.bytes_downloaded > 0


def test_startup_latency_grows_at_low_clock():
    fast = play(pinned_mhz=1512)
    slow = play(pinned_mhz=384)
    assert 2.0 < slow.startup_latency_s / fast.startup_latency_s < 5.0


def test_no_stalls_even_at_low_clock():
    """The paper's central streaming result: stall ratio ≈ 0 at 384 MHz."""
    result = play(pinned_mhz=384, duration=60.0)
    assert result.stall_ratio < 0.03


def test_single_core_stalls():
    """Fig 4c: ~15 % stall ratio and much higher start-up on one core."""
    one = play(governor="OD", online_cores=1, duration=60.0)
    four = play(governor="OD", online_cores=4, duration=60.0)
    assert 0.08 < one.stall_ratio < 0.30
    assert four.stall_ratio < 0.02
    assert one.startup_latency_s > four.startup_latency_s + 2.0


def test_two_cores_suffice():
    two = play(governor="OD", online_cores=2, duration=60.0)
    assert two.stall_ratio < 0.02


def test_low_memory_raises_startup_not_stalls():
    tight = play(governor="OD", memory_gb=0.5, duration=60.0)
    full = play(governor="OD", memory_gb=2.0, duration=60.0)
    assert tight.startup_latency_s > 1.5 * full.startup_latency_s
    assert tight.stall_ratio < 0.02


def test_powersave_governor_raises_startup():
    pw = play(governor="PW")
    pf = play(governor="PF")
    assert pw.startup_latency_s > 1.3 * pf.startup_latency_s
    assert pw.stall_ratio < 0.02


def test_device_specific_format():
    """YouTube serves 1080p to the Pixel2 but not to the Intex."""
    intex = play(spec=by_name("Intex Amaze+"), governor="OD", duration=30.0)
    pixel = play(spec=PIXEL2, governor="OD", duration=30.0)
    assert intex.format.height <= 720
    assert pixel.format.height == 1080


def test_prefetch_reaches_read_ahead():
    """§3.2: the 120 s read-ahead fills within ~40 s of start-up."""
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    player = StreamingPlayer(env, device, Link(env),
                             VideoSpec(duration_s=240.0),
                             PlayerConfig(read_ahead_s=120.0))
    result = env.run(env.process(player.run()))
    assert result.buffer_full_at_s is not None
    assert result.buffer_full_at_s < 60.0


def test_shorter_read_ahead_still_no_stall_on_lan():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    player = StreamingPlayer(env, device, Link(env),
                             VideoSpec(duration_s=60.0),
                             PlayerConfig(read_ahead_s=10.0))
    result = env.run(env.process(player.run()))
    assert result.stall_ratio < 0.02


def test_stall_ratio_bounds():
    result = play(pinned_mhz=1512, duration=30.0)
    assert 0.0 <= result.stall_ratio <= 1.0


def test_startup_across_devices_monotone_with_capability():
    order = ["Intex Amaze+", "Gionee F103", "Google Nexus4", "Google Pixel2"]
    startups = [
        play(spec=by_name(name), governor="OD", duration=20.0).startup_latency_s
        for name in order
    ]
    assert startups == sorted(startups, reverse=True)
