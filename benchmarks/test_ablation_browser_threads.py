"""Ablation: thread-level parallelism, browser vs video pipeline.

The same 4→2→1 core sweep barely moves the browser (its main thread is
the bottleneck) but cripples the video pipeline — the paper's central
architectural contrast (Takeaways 1 and 2).
"""

from repro.analysis import render_table
from repro.core.studies import (
    VideoStudy,
    VideoStudyConfig,
    WebStudy,
    WebStudyConfig,
)
from repro.video import VideoSpec


def run_ablation():
    web = WebStudy(WebStudyConfig(n_pages=4, trials=1))
    video = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=45),
                                        trials=1))
    web_rows = dict(web.plt_vs_cores(cores=(1, 2, 4)))
    video_rows = {p.label: p for p in video.vs_cores(cores=(1, 2, 4))}
    return web_rows, video_rows


def test_ablation_browser_threads(benchmark, fig_printer):
    web_rows, video_rows = benchmark.pedantic(run_ablation, rounds=1,
                                              iterations=1)
    table = render_table(
        ["Cores", "Web PLT (s)", "Video startup (s)", "Video stall"],
        [[n, f"{web_rows[n].mean:.2f}",
          f"{video_rows[n].startup.mean:.2f}",
          f"{video_rows[n].stall_ratio.mean:.3f}"] for n in (1, 2, 4)],
    )
    fig_printer("Ablation: core scaling, browser vs video pipeline", table)
    web_gain_2_to_4 = web_rows[2].mean / web_rows[4].mean
    video_gain_1_to_4 = (video_rows[1].startup.mean
                         / video_rows[4].startup.mean)
    # The browser gains almost nothing beyond two cores ...
    assert web_gain_2_to_4 < 1.3
    # ... while the parallel video pipeline gains a lot from more cores.
    assert video_gain_1_to_4 > 1.8
