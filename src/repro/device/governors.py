"""Android CPU-frequency governors.

Executable transliterations of the five governors the paper sweeps
(Fig 3d/4d/5d): **performance (PF)**, **interactive (IN)**, **userspace
(US)**, **ondemand (OD)**, and **powersave (PW)**, following the Linux
``cpufreq`` documentation the paper cites.

Each governor is a simulation process sampling cluster utilization on its
own cadence and moving the cluster's DVFS operating point.  The QoE deltas
in the paper (powersave ≈ +50 % PLT, ondemand/interactive ≈ performance)
follow directly from these policies.
"""

from __future__ import annotations

from typing import Optional

from repro.device.cpu import CPU, Cluster
from repro.sim import Environment


class Governor:
    """Base class: binds to a CPU and drives every cluster's frequency."""

    #: Short code used in the paper's figures (PF/IN/US/OD/PW).
    code = "??"
    #: Sampling period in seconds (governor-specific).
    sample_period = 0.1

    def __init__(self, env: Environment, cpu: CPU):
        self.env = env
        self.cpu = cpu
        self._running = False

    def start(self) -> None:
        """Apply the initial policy and begin periodic sampling."""
        if self._running:
            raise RuntimeError("governor already started")
        self._running = True
        for cluster in self.cpu.clusters:
            self.apply_initial(cluster)
        if self.needs_sampling():
            self.env.process(self._loop())

    def needs_sampling(self) -> bool:
        """Whether this governor reacts to load (static ones do not)."""
        return True

    def apply_initial(self, cluster: Cluster) -> None:
        """Set the cluster's starting operating point."""
        raise NotImplementedError

    def on_sample(self, cluster: Cluster, utilization: float) -> None:
        """React to one utilization sample in [0, 1]."""
        raise NotImplementedError

    def _loop(self):
        snapshots = [
            (cluster, cluster.busy_time(), self.env.now)
            for cluster in self.cpu.clusters
        ]
        while True:
            yield self.env.timeout(self.sample_period)
            next_snapshots = []
            for cluster, busy0, t0 in snapshots:
                utilization = cluster.utilization_since(busy0, t0)
                self.on_sample(cluster, utilization)
                next_snapshots.append((cluster, cluster.busy_time(), self.env.now))
            snapshots = next_snapshots


class PerformanceGovernor(Governor):
    """PF: statically pins every cluster at the top of its ladder."""

    code = "PF"

    def needs_sampling(self) -> bool:
        return False

    def apply_initial(self, cluster: Cluster) -> None:
        cluster.set_freq_index(len(cluster.spec.freqs_mhz) - 1)

    def on_sample(self, cluster: Cluster, utilization: float) -> None:  # pragma: no cover
        pass


class PowersaveGovernor(Governor):
    """PW: caps every cluster at a low operating point.

    The stock Linux powersave governor pins ``scaling_min_freq``; on
    shipping Android builds, however, vendor input-boost/perflock raises
    the effective floor during interactive work, so measured powersave
    behaviour is a *cap* at roughly half the ladder rather than a hard pin
    at the bottom.  The paper observes exactly this: powersave costs ~+50 %
    PLT, far less than the 4–5× a truly min-pinned clock produces
    (compare its Fig 3d with its Fig 3a @384 MHz).  ``cap_fraction``
    reproduces that shape.
    """

    code = "PW"

    def __init__(self, env: Environment, cpu: CPU, cap_fraction: float = 0.55):
        if not 0 < cap_fraction <= 1:
            raise ValueError("cap_fraction must lie in (0, 1]")
        super().__init__(env, cpu)
        self.cap_fraction = cap_fraction

    def needs_sampling(self) -> bool:
        return False

    def apply_initial(self, cluster: Cluster) -> None:
        cluster.set_freq_mhz(self.cap_fraction * cluster.spec.max_mhz)

    def on_sample(self, cluster: Cluster, utilization: float) -> None:  # pragma: no cover
        pass


class UserspaceGovernor(Governor):
    """US: holds the frequency the "user" programmed via sysfs.

    When the governor is switched to userspace, ``scaling_setspeed``
    inherits the previously running speed — the ladder top on a phone that
    was just interactive — so ``setspeed_mhz=None`` pins the maximum step
    (which is why the paper's US bars track PF).  Experiments that sweep
    the clock pass an explicit ``setspeed_mhz``.
    """

    code = "US"

    def __init__(self, env: Environment, cpu: CPU, setspeed_mhz: Optional[float] = None):
        super().__init__(env, cpu)
        self.setspeed_mhz = setspeed_mhz

    def needs_sampling(self) -> bool:
        return False

    def apply_initial(self, cluster: Cluster) -> None:
        if self.setspeed_mhz is None:
            cluster.set_freq_index(len(cluster.spec.freqs_mhz) - 1)
        else:
            cluster.set_freq_mhz(self.setspeed_mhz)

    def on_sample(self, cluster: Cluster, utilization: float) -> None:  # pragma: no cover
        pass


class OndemandGovernor(Governor):
    """OD: jump to max above ``up_threshold`` load, else scale proportionally.

    Mirrors the documented algorithm: when a sample shows load above the
    threshold the cluster jumps straight to the ladder top; otherwise the
    target frequency is ``f_max × load / up_threshold`` rounded up to a
    ladder step, which keeps post-decrease load just below the threshold.
    """

    code = "OD"
    sample_period = 0.1

    def __init__(self, env: Environment, cpu: CPU, up_threshold: float = 0.80):
        if not 0 < up_threshold <= 1:
            raise ValueError("up_threshold must lie in (0, 1]")
        super().__init__(env, cpu)
        self.up_threshold = up_threshold

    def apply_initial(self, cluster: Cluster) -> None:
        cluster.set_freq_index(0)

    def on_sample(self, cluster: Cluster, utilization: float) -> None:
        if utilization >= self.up_threshold:
            cluster.set_freq_index(len(cluster.spec.freqs_mhz) - 1)
        else:
            target = cluster.spec.max_mhz * utilization / self.up_threshold
            cluster.set_freq_mhz(target)


class InteractiveGovernor(Governor):
    """IN: fast ramp to ``hispeed`` on load, then track a target load.

    Samples on a 20 ms timer (vs ondemand's 100 ms).  A busy sample above
    ``go_hispeed_load`` ramps immediately to the hispeed frequency (a high
    ladder step); sustained load above ``target_load`` walks the frequency
    to the top; light load decays one step at a time after a hold period.
    The fast ramp is why interactive tracks the performance governor
    closely for bursty UI workloads.
    """

    code = "IN"
    sample_period = 0.020

    def __init__(
        self,
        env: Environment,
        cpu: CPU,
        go_hispeed_load: float = 0.99,
        target_load: float = 0.90,
        min_sample_time: float = 0.080,
    ):
        super().__init__(env, cpu)
        self.go_hispeed_load = go_hispeed_load
        self.target_load = target_load
        self.min_sample_time = min_sample_time
        self._floor_until: dict[Cluster, float] = {}

    def apply_initial(self, cluster: Cluster) -> None:
        cluster.set_freq_index(0)

    def _hispeed_index(self, cluster: Cluster) -> int:
        # hispeed_freq defaults to ~max on most boards; use the step at or
        # above 80 % of the ladder top.
        threshold = 0.8 * cluster.spec.max_mhz
        for index, step in enumerate(cluster.spec.freqs_mhz):
            if step >= threshold:
                return index
        return len(cluster.spec.freqs_mhz) - 1

    def on_sample(self, cluster: Cluster, utilization: float) -> None:
        # Keyed by the cluster object itself: a pure identity lookup, with
        # no run-dependent id() value that could leak into an ordering.
        key = cluster
        top = len(cluster.spec.freqs_mhz) - 1
        if utilization >= self.go_hispeed_load:
            target = max(self._hispeed_index(cluster), cluster.freq_index)
            if cluster.freq_index >= self._hispeed_index(cluster):
                target = min(cluster.freq_index + 1, top)
            cluster.set_freq_index(target)
            self._floor_until[key] = self.env.now + self.min_sample_time
        elif utilization >= self.target_load:
            cluster.set_freq_index(min(cluster.freq_index + 1, top))
            self._floor_until[key] = self.env.now + self.min_sample_time
        else:
            if self.env.now >= self._floor_until.get(key, 0.0):
                desired = cluster.spec.max_mhz * utilization / self.target_load
                if cluster.freq_mhz > desired:
                    cluster.set_freq_index(max(cluster.freq_index - 1, 0))


#: Paper figure order: PF IN US OD PW.
GOVERNOR_CODES = ("PF", "IN", "US", "OD", "PW")

_GOVERNORS = {
    "PF": PerformanceGovernor,
    "IN": InteractiveGovernor,
    "US": UserspaceGovernor,
    "OD": OndemandGovernor,
    "PW": PowersaveGovernor,
    "performance": PerformanceGovernor,
    "interactive": InteractiveGovernor,
    "userspace": UserspaceGovernor,
    "ondemand": OndemandGovernor,
    "powersave": PowersaveGovernor,
}


def make_governor(name: str, env: Environment, cpu: CPU, **kwargs) -> Governor:
    """Instantiate a governor by code ("PF") or full name ("performance")."""
    try:
        factory = _GOVERNORS[name]
    except KeyError:
        raise ValueError(
            f"unknown governor {name!r}; choose from {sorted(set(_GOVERNORS))}"
        ) from None
    return factory(env, cpu, **kwargs)


__all__ = [
    "GOVERNOR_CODES",
    "Governor",
    "InteractiveGovernor",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "make_governor",
]
