"""Executor contract: serial/multiprocess equivalence and validation."""

from __future__ import annotations

import pytest

from repro.parallel import (
    Executor,
    MultiprocessExecutor,
    ParallelExecutionError,
    SerialExecutor,
    SupervisedExecutor,
    get_executor,
)


def square(x: int) -> int:
    return x * x


def explode(x: int) -> int:
    raise ValueError(f"boom on {x}")


# -- map order and equivalence ----------------------------------------------

def test_serial_map_preserves_item_order():
    assert SerialExecutor().map(square, range(8)) == [
        0, 1, 4, 9, 16, 25, 36, 49,
    ]


def test_multiprocess_map_matches_serial():
    items = list(range(20))
    serial = SerialExecutor().map(square, items)
    assert MultiprocessExecutor(max_workers=3).map(square, items) == serial


def test_run_tasks_yields_every_index_exactly_once():
    for executor in (SerialExecutor(), MultiprocessExecutor(max_workers=2)):
        indices = sorted(i for i, _ in executor.run_tasks(square, range(9)))
        assert indices == list(range(9))


def test_empty_item_list_is_fine():
    assert SerialExecutor().map(square, []) == []
    assert MultiprocessExecutor(max_workers=4).map(square, []) == []


def test_single_item_skips_the_pool():
    # One item never justifies worker spawn; the serial fallback also means
    # lambdas survive, which would be unpicklable in the pool path.
    single = MultiprocessExecutor(max_workers=4)
    assert single.map(lambda x: x + 1, [41]) == [42]  # simlint: disable=DF703


def test_task_exceptions_propagate():
    with pytest.raises(ValueError, match="boom on"):
        SerialExecutor().map(explode, [1])
    with pytest.raises(ValueError, match="boom on"):
        MultiprocessExecutor(max_workers=2).map(explode, [1, 2, 3])


# -- validation and dispatch ------------------------------------------------

def test_unpicklable_fn_is_a_parallel_execution_error():
    captured = []

    def closure(x):          # closes over `captured`: unpicklable
        captured.append(x)
        return x

    with pytest.raises(ParallelExecutionError, match="not picklable"):
        MultiprocessExecutor(max_workers=2).map(closure, [1, 2])  # simlint: disable=DF703


def test_dropped_index_is_detected():
    class LossyExecutor(Executor):
        def run_tasks(self, fn, items):
            for index, item in enumerate(items):
                if index != 1:
                    yield index, fn(item)

    with pytest.raises(ParallelExecutionError, match=r"indices \[1\]"):
        LossyExecutor().map(square, [1, 2, 3])


def test_get_executor_dispatch():
    assert isinstance(get_executor(1), SerialExecutor)
    pooled = get_executor(4)
    assert isinstance(pooled, SupervisedExecutor)
    assert pooled.jobs == 4
    bare = get_executor(4, supervised=False)
    assert isinstance(bare, MultiprocessExecutor)
    assert not isinstance(bare, SupervisedExecutor)
    assert bare.jobs == 4


def test_supervisor_knobs_pass_through_get_executor():
    pooled = get_executor(2, task_timeout_s=30.0, max_task_retries=5)
    assert isinstance(pooled, SupervisedExecutor)
    assert pooled.task_timeout_s == 30.0
    assert pooled.max_task_retries == 5


def test_supervisor_knobs_rejected_for_unsupervised_paths():
    with pytest.raises(ValueError, match="supervised"):
        get_executor(1, task_timeout_s=30.0)
    with pytest.raises(ValueError, match="supervised"):
        get_executor(4, max_task_retries=5, supervised=False)


def test_invalid_worker_counts_raise():
    for jobs in (0, -1, -7):
        with pytest.raises(ValueError, match="at least 1"):
            get_executor(jobs)
    with pytest.raises(ValueError):
        MultiprocessExecutor(max_workers=0)


def test_abandoned_run_tasks_shuts_the_pool_down():
    # Closing the generator mid-iteration (the leak the try/finally in
    # MultiprocessExecutor.run_tasks fixes) must not leave orphaned
    # workers grinding through the queue.
    executor = MultiprocessExecutor(max_workers=2)
    gen = executor.run_tasks(square, list(range(50)))
    next(gen)
    gen.close()  # runs the finally: shutdown(wait=False, cancel_futures=True)
    # The executor stays usable for a fresh pool afterwards.
    assert executor.map(square, [1, 2, 3]) == [1, 4, 9]
