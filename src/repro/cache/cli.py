"""``python -m repro cache`` — inspect and maintain a trial cache.

Actions::

    python -m repro cache stats [DIR]                 # entries, bytes, breakdown
    python -m repro cache gc [DIR] --max-age-days 30  # drop stale entries
    python -m repro cache gc [DIR] --max-bytes 10000000
    python -m repro cache clear [DIR]                 # drop everything

``DIR`` defaults to the ``REPRO_CACHE`` environment variable.  Error
paths exit 2 with a one-line ``error: ...`` message, matching the main
CLI's contract.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Optional

from repro.cache.store import CACHE_MARKER, TrialCache


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect and maintain a content-addressed trial "
                    "cache (see docs/caching.md).",
    )
    parser.add_argument("action", choices=["stats", "gc", "clear"],
                        help="what to do with the store")
    parser.add_argument("dir", nargs="?", default=None,
                        help="cache directory (default: $REPRO_CACHE)")
    parser.add_argument("--max-age-days", type=float, default=None,
                        metavar="DAYS",
                        help="gc: drop entries older than DAYS")
    parser.add_argument("--max-bytes", type=int, default=None,
                        metavar="N",
                        help="gc: drop oldest entries until the store "
                             "fits in N bytes")
    return parser


def _stats(cache: TrialCache) -> int:
    experiments: Dict[str, int] = {}
    fingerprints = set()
    count = 0
    total = 0
    for path in cache.iter_entries():
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        count += 1
        total += path.stat().st_size
        name = str(entry.get("experiment", "?"))
        experiments[name] = experiments.get(name, 0) + 1
        fingerprints.add(entry.get("fingerprint"))
    print(f"cache {cache.root}: {count} entries, {total} bytes, "
          f"{len(fingerprints)} code fingerprints")
    for name in sorted(experiments):
        print(f"  {name}: {experiments[name]}")
    return 0


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    root = args.dir or os.environ.get("REPRO_CACHE")
    if not root:
        print("error: no cache directory (pass DIR or set REPRO_CACHE)",
              file=sys.stderr)
        return 2
    if args.max_age_days is not None and args.max_age_days < 0:
        print(f"error: --max-age-days cannot be negative "
              f"(got {args.max_age_days})", file=sys.stderr)
        return 2
    if args.max_bytes is not None and args.max_bytes < 0:
        print(f"error: --max-bytes cannot be negative "
              f"(got {args.max_bytes})", file=sys.stderr)
        return 2
    cache = TrialCache(root)
    if args.action == "stats":
        if not (cache.root / CACHE_MARKER).exists():
            print(f"cache {cache.root}: empty (no {CACHE_MARKER} marker)")
            return 0
        return _stats(cache)
    if args.action == "gc" and args.max_age_days is None \
            and args.max_bytes is None:
        print("error: gc needs --max-age-days and/or --max-bytes",
              file=sys.stderr)
        return 2
    try:
        if args.action == "gc":
            removed = cache.gc(max_age_days=args.max_age_days,
                               max_bytes=args.max_bytes)
        else:
            removed = cache.clear()
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"removed {removed} entries ({cache.entry_count()} remain)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
