"""Unit tests for the CPU/cluster model."""

import pytest

from repro.device import Device, NEXUS4, PIXEL2
from repro.device.cpu import CPU, ClusterSpec
from repro.sim import Environment


def run_task(device, cycles, **kwargs):
    env = device.env
    task = device.submit(cycles, **kwargs)
    env.run(task.done)
    return env.now


def test_task_time_scales_inverse_with_clock():
    times = {}
    for mhz in (384, 810, 1512):
        env = Environment()
        device = Device(env, NEXUS4, pinned_mhz=mhz)
        times[mhz] = run_task(device, 1e9)
    assert times[384] == pytest.approx(times[1512] * 1512 / 384, rel=1e-3)
    assert times[384] == pytest.approx(times[810] * 810 / 384, rel=1e-3)


def test_ipc_scales_execution_rate():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    elapsed = run_task(device, 1e9)
    expected = 1e9 / (1512e6 * 1.40)
    assert elapsed == pytest.approx(expected, rel=1e-6)


def test_mem_stall_is_frequency_independent():
    elapsed = {}
    for mhz in (384, 1512):
        env = Environment()
        device = Device(env, NEXUS4, pinned_mhz=mhz)
        elapsed[mhz] = run_task(device, 0, mem_stall=0.5)
    assert elapsed[384] == pytest.approx(0.5, rel=1e-6)
    assert elapsed[1512] == pytest.approx(0.5, rel=1e-6)


def test_parallel_tasks_use_multiple_cores():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    tasks = [device.submit(1e9) for _ in range(4)]
    env.run(env.all_of([t.done for t in tasks]))
    single = 1e9 / (1512e6 * 1.40)
    assert env.now == pytest.approx(single, rel=1e-2)


def test_single_core_serializes_tasks():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512, online_cores=1)
    tasks = [device.submit(1e9) for _ in range(4)]
    env.run(env.all_of([t.done for t in tasks]))
    single = 1e9 / (1512e6 * 1.40)
    assert env.now == pytest.approx(4 * single, rel=5e-2)


def test_round_robin_fairness_on_one_core():
    """Two equal tasks on one core finish at roughly the same time."""
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512, online_cores=1)
    t1 = device.submit(1e9)
    t2 = device.submit(1e9)
    finish = {}

    def watch(name, task):
        yield task.done
        finish[name] = env.now

    env.process(watch("t1", t1))
    env.process(watch("t2", t2))
    env.run()
    assert abs(finish["t1"] - finish["t2"]) < 0.05


def test_big_little_prefers_big_cluster():
    env = Environment()
    device = Device(env, PIXEL2, governor="PF")
    elapsed = run_task(device, 1e9)
    big_rate = 2457e6 * 2.20
    assert elapsed == pytest.approx(1e9 / big_rate, rel=1e-3)


def test_zero_cycle_task_completes_immediately():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    assert run_task(device, 0) == 0.0


def test_negative_work_rejected():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    with pytest.raises(ValueError):
        device.submit(-1)


def test_cycle_multiplier_inflates_time():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    device.cpu.set_cycle_multiplier(2.0)
    elapsed = run_task(device, 1e9)
    assert elapsed == pytest.approx(2e9 / (1512e6 * 1.40), rel=1e-3)


def test_cycle_multiplier_cannot_deflate():
    env = Environment()
    device = Device(env, NEXUS4)
    with pytest.raises(ValueError):
        device.cpu.set_cycle_multiplier(0.5)


def test_busy_time_accounting():
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=1512)
    elapsed = run_task(device, 1e9)
    assert device.cpu.busy_time() == pytest.approx(elapsed, rel=1e-6)


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec("bad", 0, (100, 200))
    with pytest.raises(ValueError):
        ClusterSpec("bad", 2, ())
    with pytest.raises(ValueError):
        ClusterSpec("bad", 2, (200, 100))
    with pytest.raises(ValueError):
        ClusterSpec("bad", 2, (100, 200), ipc=0)


def test_online_cores_bounds():
    env = Environment()
    with pytest.raises(ValueError):
        CPU(env, [ClusterSpec("c", 4, (100, 200))], online_cores=5)
    with pytest.raises(ValueError):
        CPU(env, [ClusterSpec("c", 4, (100, 200))], online_cores=0)


def test_set_freq_mhz_snaps_to_ladder():
    env = Environment()
    cpu = CPU(env, [ClusterSpec("c", 1, (300, 600, 900))])
    cluster = cpu.clusters[0]
    cluster.set_freq_mhz(450)
    assert cluster.freq_mhz == 600
    cluster.set_freq_mhz(9999)
    assert cluster.freq_mhz == 900
    cluster.set_freq_mhz(100)
    assert cluster.freq_mhz == 300


def test_offline_cores_prefer_keeping_big_cluster():
    env = Environment()
    device = Device(env, PIXEL2, online_cores=2, governor="PF")
    rates = [c.rate_hz for c in device.cpu.clusters if c.online_cores > 0]
    assert max(rates) == pytest.approx(2457e6 * 2.20)
