"""Pattern parser: regex source → AST.

A hand-written recursive-descent parser for the supported syntax (see the
package docstring).  The grammar::

    alternation :=  concat ('|' concat)*
    concat      :=  repeat*
    repeat      :=  atom quantifier?
    quantifier  :=  ('*' | '+' | '?' | '{' m (',' n?)? '}') '?'?
    atom        :=  literal | '.' | escape | class | '(' alternation ')'
                  | '^' | '$'

Character classes are normalized to sorted, merged, inclusive codepoint
intervals at parse time, so later stages never re-derive set semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.regexlib.errors import RegexSyntaxError

#: Cap on counted-repeat expansion ({m,n}); larger bounds are rejected to
#: keep compiled programs small.
MAX_REPEAT = 256

Intervals = tuple[tuple[int, int], ...]


def merge_intervals(pairs: Sequence[tuple[int, int]]) -> Intervals:
    """Sort and coalesce inclusive codepoint intervals."""
    ordered = sorted((lo, hi) for lo, hi in pairs if lo <= hi)
    merged: list[tuple[int, int]] = []
    for lo, hi in ordered:
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


MAX_CODEPOINT = 0x10FFFF

#: Predefined classes, as inclusive intervals.
DIGIT: Intervals = ((ord("0"), ord("9")),)
WORD: Intervals = merge_intervals(
    [(ord("0"), ord("9")), (ord("A"), ord("Z")), (ord("a"), ord("z")),
     (ord("_"), ord("_"))]
)
SPACE: Intervals = merge_intervals(
    [(ord(c), ord(c)) for c in " \t\n\r\f\v"]
)


def negate_intervals(intervals: Intervals) -> Intervals:
    """Complement within [0, MAX_CODEPOINT]."""
    out: list[tuple[int, int]] = []
    prev_end = -1
    for lo, hi in intervals:
        if lo > prev_end + 1:
            out.append((prev_end + 1, lo - 1))
        prev_end = max(prev_end, hi)
    if prev_end < MAX_CODEPOINT:
        out.append((prev_end + 1, MAX_CODEPOINT))
    return tuple(out)


# -- AST ---------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    """Base AST node."""


@dataclass(frozen=True)
class Empty(Node):
    """Matches the empty string."""


@dataclass(frozen=True)
class Literal(Node):
    """A single literal character."""

    char: str


@dataclass(frozen=True)
class CharClass(Node):
    """A set of codepoints given as merged inclusive intervals."""

    intervals: Intervals


@dataclass(frozen=True)
class Dot(Node):
    """``.`` — any character except newline."""


@dataclass(frozen=True)
class Concat(Node):
    """Sequence of sub-patterns."""

    parts: tuple[Node, ...]


@dataclass(frozen=True)
class Alternate(Node):
    """Ordered alternation (leftmost branch preferred)."""

    options: tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    """Quantified sub-pattern: ``child{min, max}``; ``max=None`` = ∞."""

    child: Node
    min: int
    max: Optional[int]
    lazy: bool = False


@dataclass(frozen=True)
class Group(Node):
    """Capturing group ``index`` (1-based); ``index=None`` = non-capturing."""

    child: Node
    index: Optional[int]


@dataclass(frozen=True)
class Anchor(Node):
    """Zero-width assertion: 'bol', 'eol', 'wb', or 'nwb'."""

    kind: str


_ESCAPE_CLASSES: dict[str, tuple[Intervals, bool]] = {
    "d": (DIGIT, False),
    "D": (DIGIT, True),
    "w": (WORD, False),
    "W": (WORD, True),
    "s": (SPACE, False),
    "S": (SPACE, True),
}

_ESCAPE_CHARS = {
    "n": "\n", "t": "\t", "r": "\r", "f": "\f", "v": "\v", "0": "\0",
    "a": "\a",
}

#: Characters that must be escaped to be literals outside classes.
_METACHARS = set("\\^$.|?*+()[]{}")


class _Parser:
    """Stateful single-pass parser over the pattern string."""

    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0
        self.group_count = 0
        self.group_names: dict[str, int] = {}

    # -- low-level cursor helpers --------------------------------------

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self.pattern, self.pos)

    def _peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def _next(self) -> str:
        char = self._peek()
        if char is None:
            raise self._error("unexpected end of pattern")
        self.pos += 1
        return char

    def _eat(self, char: str) -> bool:
        if self._peek() == char:
            self.pos += 1
            return True
        return False

    # -- grammar ---------------------------------------------------------

    def parse(self) -> Node:
        node = self._alternation()
        if self.pos != len(self.pattern):
            raise self._error(f"unexpected {self.pattern[self.pos]!r}")
        return node

    def _alternation(self) -> Node:
        options = [self._concat()]
        while self._eat("|"):
            options.append(self._concat())
        if len(options) == 1:
            return options[0]
        return Alternate(tuple(options))

    def _concat(self) -> Node:
        parts: list[Node] = []
        while True:
            char = self._peek()
            if char is None or char in "|)":
                break
            parts.append(self._repeat())
        if not parts:
            return Empty()
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def _repeat(self) -> Node:
        atom = self._atom()
        char = self._peek()
        if char not in ("*", "+", "?", "{"):
            return atom
        if char == "{" and not self._looks_like_counted_repeat():
            return atom
        self.pos += 1
        if char == "*":
            low, high = 0, None
        elif char == "+":
            low, high = 1, None
        elif char == "?":
            low, high = 0, 1
        else:
            low, high = self._counted_bounds()
        if isinstance(atom, Anchor):
            raise self._error("cannot quantify an anchor")
        lazy = self._eat("?")
        return Repeat(atom, low, high, lazy=lazy)

    def _looks_like_counted_repeat(self) -> bool:
        """JS/Python treat a non-numeric '{' as a literal brace."""
        rest = self.pattern[self.pos + 1:]
        digits = 0
        for char in rest:
            if char.isdigit():
                digits += 1
            elif char in ",}" and digits > 0:
                return True
            elif char == "," and digits == 0:
                return False
            else:
                return False
        return False

    def _counted_bounds(self) -> tuple[int, Optional[int]]:
        low = self._integer()
        high: Optional[int] = low
        if self._eat(","):
            if self._peek() == "}":
                high = None
            else:
                high = self._integer()
        if not self._eat("}"):
            raise self._error("expected '}' in counted repeat")
        if high is not None and high < low:
            raise self._error("repeat bounds out of order")
        if low > MAX_REPEAT or (high is not None and high > MAX_REPEAT):
            raise self._error(f"repeat bound exceeds {MAX_REPEAT}")
        return low, high

    def _integer(self) -> int:
        start = self.pos
        while (char := self._peek()) is not None and char.isdigit():
            self.pos += 1
        if self.pos == start:
            raise self._error("expected a number")
        return int(self.pattern[start:self.pos])

    def _atom(self) -> Node:
        char = self._next()
        if char == "(":
            return self._group()
        if char == "[":
            return self._char_class()
        if char == ".":
            return Dot()
        if char == "^":
            return Anchor("bol")
        if char == "$":
            return Anchor("eol")
        if char == "\\":
            return self._escape()
        if char in "*+?":
            raise self._error("quantifier with nothing to repeat")
        return Literal(char)

    def _group(self) -> Node:
        index: Optional[int]
        if self._eat("?"):
            if self._eat(":"):
                index = None
            elif self._eat("P"):
                if not self._eat("<"):
                    raise self._error("expected '<' after (?P")
                name = self._group_name()
                self.group_count += 1
                index = self.group_count
                if name in self.group_names:
                    raise self._error(f"duplicate group name {name!r}")
                self.group_names[name] = index
            else:
                raise self._error("unsupported group extension")
        else:
            self.group_count += 1
            index = self.group_count
        child = self._alternation()
        if not self._eat(")"):
            raise self._error("missing ')'")
        return Group(child, index)

    def _group_name(self) -> str:
        start = self.pos
        while (char := self._peek()) is not None and (
            char.isalnum() or char == "_"
        ):
            self.pos += 1
        name = self.pattern[start:self.pos]
        if not name or name[0].isdigit():
            raise self._error("bad group name")
        if not self._eat(">"):
            raise self._error("expected '>' closing group name")
        return name

    def _escape(self) -> Node:
        char = self._next()
        if char in _ESCAPE_CLASSES:
            intervals, negated = _ESCAPE_CLASSES[char]
            if negated:
                intervals = negate_intervals(intervals)
            return CharClass(intervals)
        if char == "b":
            return Anchor("wb")
        if char == "B":
            return Anchor("nwb")
        if char in _ESCAPE_CHARS:
            return Literal(_ESCAPE_CHARS[char])
        if char == "x":
            return Literal(chr(self._hex_value(2)))
        if char == "u":
            return Literal(chr(self._hex_value(4)))
        if char.isalnum():
            raise self._error(f"unknown escape \\{char}")
        return Literal(char)

    def _hex_value(self, ndigits: int) -> int:
        digits = self.pattern[self.pos:self.pos + ndigits]
        if len(digits) < ndigits:
            raise self._error("truncated hex escape")
        try:
            value = int(digits, 16)
        except ValueError:
            raise self._error(f"bad hex escape {digits!r}") from None
        self.pos += ndigits
        return value

    # -- character classes ----------------------------------------------

    def _class_member(self) -> tuple[Optional[Intervals], Optional[int]]:
        """One class member: (class-intervals, None) or (None, codepoint)."""
        char = self._next()
        if char != "\\":
            return None, ord(char)
        escape = self._next()
        if escape in _ESCAPE_CLASSES:
            intervals, negated = _ESCAPE_CLASSES[escape]
            if negated:
                intervals = negate_intervals(intervals)
            return intervals, None
        if escape in _ESCAPE_CHARS:
            return None, ord(_ESCAPE_CHARS[escape])
        if escape == "x":
            return None, self._hex_value(2)
        if escape == "u":
            return None, self._hex_value(4)
        if escape == "b":
            return None, 0x08  # backspace inside a class
        if escape.isalnum():
            raise self._error(f"unknown escape \\{escape} in class")
        return None, ord(escape)

    def _char_class(self) -> Node:
        negated = self._eat("^")
        pairs: list[tuple[int, int]] = []
        first = True
        while True:
            char = self._peek()
            if char is None:
                raise self._error("missing ']'")
            if char == "]" and not first:
                self.pos += 1
                break
            first = False
            intervals, codepoint = self._class_member()
            if intervals is not None:
                pairs.extend(intervals)
                continue
            assert codepoint is not None
            if self._peek() == "-" and self.pos + 1 < len(self.pattern) and \
                    self.pattern[self.pos + 1] != "]":
                self.pos += 1  # consume '-'
                hi_intervals, hi = self._class_member()
                if hi_intervals is not None:
                    raise self._error("bad character range endpoint")
                assert hi is not None
                if hi < codepoint:
                    raise self._error("reversed character range")
                pairs.append((codepoint, hi))
            else:
                pairs.append((codepoint, codepoint))
        if not pairs:
            raise self._error("empty character class")
        intervals = merge_intervals(pairs)
        if negated:
            intervals = negate_intervals(intervals)
        return CharClass(intervals)


def parse(pattern: str) -> tuple[Node, int]:
    """Parse ``pattern``; returns (AST root, number of capturing groups)."""
    parser = _Parser(pattern)
    node = parser.parse()
    return node, parser.group_count


def parse_with_names(pattern: str) -> tuple[Node, int, dict[str, int]]:
    """Like :func:`parse`, also returning the named-group index map."""
    parser = _Parser(pattern)
    node = parser.parse()
    return node, parser.group_count, dict(parser.group_names)


__all__ = [
    "Alternate",
    "Anchor",
    "CharClass",
    "Concat",
    "DIGIT",
    "Dot",
    "Empty",
    "Group",
    "Intervals",
    "Literal",
    "MAX_REPEAT",
    "Node",
    "Repeat",
    "SPACE",
    "WORD",
    "merge_intervals",
    "negate_intervals",
    "parse",
    "parse_with_names",
]
