"""Fig 3d: Web PLT per frequency governor (PF IN US OD PW)."""

from repro.analysis import ascii_bars
from repro.core.studies import WebStudy, WebStudyConfig


def run_fig3d():
    study = WebStudy(WebStudyConfig(n_pages=5, trials=1))
    return study.plt_vs_governor()


def test_fig3d(benchmark, fig_printer):
    rows = benchmark.pedantic(run_fig3d, rounds=1, iterations=1)
    body = ascii_bars([code for code, _ in rows],
                      [s.mean for _, s in rows], unit="s")
    fig_printer("Fig 3d: PLT vs governor (Nexus4)", body)
    by_code = dict(rows)
    # Paper: powersave ≈ +50 % over the rest; others close to performance.
    assert 1.25 < by_code["PW"].mean / by_code["PF"].mean < 2.2
    for code in ("IN", "US", "OD"):
        assert by_code[code].mean < 1.35 * by_code["PF"].mean
