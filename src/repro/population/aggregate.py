"""Streaming fleet aggregation: count/mean/M2 + fixed-bucket histograms.

The aggregator never retains per-session results.  Each QoE metric keeps
one :class:`StreamingStat` (Welford count/mean/M2 with Chan's parallel
merge) and one fixed-bucket :class:`~repro.obs.metrics.Histogram` per
device tier (plus the ``"all"`` rollup), so peak state is
O(tiers × metrics × buckets) — independent of how many sessions stream
through.

Equivalences the tests pin down:

* ``StreamingStat`` over any ordering of a value stream matches
  :func:`repro.analysis.stats.summarize` on the same values (population
  stdev, same n/min/max; means agree to float tolerance).
* Histogram snapshots use the exact
  :meth:`~repro.obs.metrics.Histogram.as_dict` shape, so
  :func:`repro.obs.merge_snapshots` merges them and
  :func:`repro.obs.export.histogram_quantile` reads them unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.obs.metrics import Histogram

#: Reserved tier label for the cross-tier rollup series.
ALL_TIER = "all"

#: Fixed histogram bucket bounds (``le`` semantics) per QoE metric.
METRIC_BUCKETS: Dict[str, Tuple[float, ...]] = {
    "plt_s": (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0,
              15.0, 20.0, 30.0, 45.0, 60.0, 90.0),
    "startup_s": (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0,
                  8.0, 10.0, 15.0, 20.0, 30.0),
    "stall_ratio": (0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4,
                    0.5, 0.75),
    "setup_delay_s": (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 15.0,
                      20.0, 30.0, 45.0, 60.0),
    "frame_rate_fps": (5.0, 10.0, 15.0, 20.0, 24.0, 30.0, 45.0, 60.0),
}

#: QoE metrics each workload kind reports, in render order.
WORKLOAD_METRICS: Dict[str, Tuple[str, ...]] = {
    "web": ("plt_s",),
    "video": ("startup_s", "stall_ratio"),
    "rtc": ("setup_delay_s", "frame_rate_fps"),
}


class StreamingStat:
    """Welford count/mean/M2 accumulator with min/max and Chan merge.

    Matches :func:`repro.analysis.stats.summarize` semantics: population
    standard deviation (÷n), zeros for an empty stream.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingStat") -> None:
        """Fold ``other`` in (Chan et al. parallel combination)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @property
    def stdev(self) -> float:
        """Population standard deviation; 0.0 below two samples."""
        if self.count < 2:
            return 0.0
        return math.sqrt(max(self.m2, 0.0) / self.count)

    def as_dict(self) -> dict:
        if self.count == 0:
            return {"n": 0, "mean": 0.0, "stdev": 0.0, "min": 0.0, "max": 0.0}
        return {
            "n": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
        }


class _Series:
    """One (workload, metric, tier) stream: moments + histogram."""

    __slots__ = ("stat", "hist")

    def __init__(self, workload: str, metric: str):
        self.stat = StreamingStat()
        self.hist = Histogram(f"population.{workload}.{metric}",
                              METRIC_BUCKETS[metric])

    def add(self, value: float) -> None:
        self.stat.add(value)
        self.hist.observe(value)

    def merge(self, other: "_Series") -> None:
        self.stat.merge(other.stat)
        for i, count in enumerate(other.hist.bucket_counts):
            self.hist.bucket_counts[i] += count
        self.hist.overflow += other.hist.overflow
        self.hist.count += other.hist.count
        self.hist.sum += other.hist.sum

    def as_dict(self) -> dict:
        entry = self.stat.as_dict()
        entry["hist"] = self.hist.as_dict()
        return entry


def _bump(counts: Dict[str, int], key: str) -> None:
    counts[key] = counts.get(key, 0) + 1


class FleetAggregator:
    """Folds session results into per-tier metric series, O(buckets) state.

    Fold order matters only at float precision: the same multiset of
    sessions folded in any order yields the same counts and bucket
    populations exactly, and the same float accumulations (means,
    histogram sums) to ~1 ulp.  The fleet runner therefore folds in one
    canonical order so serialized aggregates are byte-identical across
    worker counts.
    """

    def __init__(self) -> None:
        self.sessions = 0
        self.failures: Dict[str, int] = {}
        self.tiers: Dict[str, int] = {}
        self.workloads: Dict[str, int] = {}
        self.networks: Dict[str, int] = {}
        self._series: Dict[Tuple[str, str, str], _Series] = {}

    @property
    def completed(self) -> int:
        return self.sessions - sum(self.failures.values())

    def _get(self, workload: str, metric: str, tier: str) -> _Series:
        key = (workload, metric, tier)
        series = self._series.get(key)
        if series is None:
            if metric not in METRIC_BUCKETS:
                raise ValueError(
                    f"metric {metric!r} has no bucket layout (known: "
                    f"{sorted(METRIC_BUCKETS)})")
            series = _Series(workload, metric)
            self._series[key] = series
        return series

    def observe(self, *, tier: str, workload: str, network: str,
                status: str, metrics: Dict[str, float]) -> None:
        """Fold one finished session (mix counts always, QoE on success)."""
        self.sessions += 1
        _bump(self.tiers, tier)
        _bump(self.workloads, workload)
        _bump(self.networks, network)
        if status != "ok":
            _bump(self.failures, status)
            return
        for metric in sorted(metrics):
            value = metrics[metric]
            self._get(workload, metric, tier).add(value)
            self._get(workload, metric, ALL_TIER).add(value)

    def merge(self, other: "FleetAggregator") -> None:
        """Fold another aggregator in (chunked / tree aggregation)."""
        self.sessions += other.sessions
        for counts, theirs in ((self.failures, other.failures),
                               (self.tiers, other.tiers),
                               (self.workloads, other.workloads),
                               (self.networks, other.networks)):
            for key, n in theirs.items():
                counts[key] = counts.get(key, 0) + n
        for (workload, metric, tier), series in other._series.items():
            self._get(workload, metric, tier).merge(series)

    def snapshot(self) -> dict:
        """Canonical nested view, sorted at every level (JSON-stable)."""
        series: dict = {}
        for (workload, metric, tier), stream in self._series.items():
            series.setdefault(workload, {}).setdefault(metric, {})[tier] = (
                stream.as_dict())
        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "failures": {k: self.failures[k] for k in sorted(self.failures)},
            "mix": {
                "networks": {k: self.networks[k]
                             for k in sorted(self.networks)},
                "tiers": {k: self.tiers[k] for k in sorted(self.tiers)},
                "workloads": {k: self.workloads[k]
                              for k in sorted(self.workloads)},
            },
            "series": {
                workload: {
                    metric: {tier: series[workload][metric][tier]
                             for tier in sorted(series[workload][metric])}
                    for metric in sorted(series[workload])
                }
                for workload in sorted(series)
            },
        }


__all__ = [
    "ALL_TIER",
    "FleetAggregator",
    "METRIC_BUCKETS",
    "StreamingStat",
    "WORKLOAD_METRICS",
]
