"""simlint: AST-based determinism and sim-invariant linter.

The reproduction's figures are only meaningful if every simulation run is
bit-for-bit repeatable (``repro.sim.core``: "two runs of the same program
produce identical schedules") and if process generators use the event-loop
API correctly.  This package machine-checks those invariants as named,
severity-ranked rules instead of trusting docstring conventions.

Public API:

* :func:`run_lint` — lint a set of paths, returns a :class:`LintReport`.
* :class:`Finding`, :class:`Severity`, :class:`LintReport` — result model.
* :data:`ALL_RULES` — the registered rule set.

Command line::

    python -m repro lint [PATH ...] [--project] [--format json]
                         [--select RULE,...] [--baseline FILE]
"""

from repro.lint.engine import LintReport, run_lint, run_project_lint
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectModel
from repro.lint.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    ProjectRule,
    Rule,
    rules_by_id,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "Finding",
    "LintReport",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "Severity",
    "run_lint",
    "run_project_lint",
    "rules_by_id",
]
