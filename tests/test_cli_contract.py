"""CLI surface contract: every subcommand behaves, README stays in sync.

Three invariants over the whole command table:

* ``--help`` exits 0 for every subcommand (argparse wiring intact);
* an unknown flag exits 2 for every subcommand (one-line usage error,
  never a traceback);
* the README documents exactly the subcommands ``python -m repro list``
  reports — both directions, so a new command cannot ship undocumented
  and the README cannot advertise a command that does not exist.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import main as cli_main

README = Path(__file__).resolve().parent.parent / "README.md"


def run_cli(argv):
    """In-process CLI invocation; normalizes SystemExit to an exit code."""
    try:
        code = cli_main(list(argv))
    except SystemExit as stop:
        code = stop.code
    return 0 if code is None else int(code)


def subcommands(capsys) -> list[str]:
    """The canonical command table, straight from ``python -m repro list``."""
    assert run_cli(["list"]) == 0
    return capsys.readouterr().out.split()


def test_list_is_sorted_and_nonempty(capsys):
    names = subcommands(capsys)
    assert names == sorted(names)
    assert "population" in names
    assert "lint" in names


def test_every_subcommand_help_exits_zero(capsys):
    for name in subcommands(capsys):
        assert run_cli([name, "--help"]) == 0, f"{name} --help"
        out = capsys.readouterr().out
        assert "usage" in out.lower(), f"{name} --help printed no usage"


def test_every_subcommand_rejects_unknown_flag(capsys):
    for name in subcommands(capsys):
        assert run_cli([name, "--no-such-flag-xyz"]) == 2, \
            f"{name} accepted an unknown flag"
        capsys.readouterr()


def test_readme_mentions_only_real_subcommands(capsys):
    known = set(subcommands(capsys)) | {"list"}
    mentioned = set(re.findall(r"python -m repro ([a-z0-9]+)",
                               README.read_text(encoding="utf-8")))
    unknown = mentioned - known
    assert not unknown, f"README references nonexistent subcommands: {unknown}"


def test_readme_documents_every_subcommand(capsys):
    names = set(subcommands(capsys))
    mentioned = set(re.findall(r"python -m repro ([a-z0-9]+)",
                               README.read_text(encoding="utf-8")))
    missing = names - mentioned
    assert not missing, f"README is missing subcommands: {missing}"


def test_unknown_subcommand_exits_two(capsys):
    assert run_cli(["frobnicate"]) == 2
