"""``python -m repro population`` — run a fleet and print its report.

Follows every CLI convention the figure commands set: one-line
``error: ...`` exit-2 validation, stdout byte-identical across ``--jobs``
values (CI compares it), supervision / cache summaries on stderr, exit
130 on interrupt.  ``--json`` writes the canonical aggregate (the
artifact CI byte-compares between serial and parallel runs) and
``--html`` a self-contained document.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Optional, Sequence


def build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro population",
        description="Population-scale QoE fleet simulation: sample a "
                    "market of device/workload/network sessions and "
                    "stream them into per-tier QoE distributions.",
    )
    parser.add_argument("--sessions", type=int, default=200,
                        help="user sessions to simulate (default 200)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fleet seed; the whole run is a pure "
                             "function of it (default 0)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = serial; N > 1 is "
                             "supervised; aggregate output is "
                             "byte-identical for any value)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-session wall budget for supervised "
                             "fan-out (requires --jobs > 1)")
    parser.add_argument("--max-task-retries", type=int, default=None,
                        metavar="K",
                        help="faulted dispatches before a session is "
                             "quarantined (requires --jobs > 1)")
    parser.add_argument("--pages", type=int, default=6,
                        help="pages in the shared web corpus (default 6)")
    parser.add_argument("--video-s", type=float, default=20.0,
                        help="video session length in seconds (default 20)")
    parser.add_argument("--call-s", type=float, default=10.0,
                        help="RTC call length in seconds (default 10)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="content-addressed session-result cache "
                             "(default: $REPRO_CACHE if set)")
    parser.add_argument("--runlog", metavar="PATH", default=None,
                        help="append run events to PATH as JSONL")
    parser.add_argument("--progress", action="store_true",
                        help="render a live progress line on stderr")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the canonical aggregate JSON to PATH")
    parser.add_argument("--html", metavar="PATH", default=None,
                        help="write a self-contained HTML report to PATH")
    return parser


def _write(path: str, text: str) -> None:
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text, encoding="utf-8")
    # stderr, not stdout: stdout stays byte-identical across --jobs while
    # serial and parallel runs write to different artifact paths.
    print(f"[wrote {target}]", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sessions < 1:
        print(f"error: --sessions must be at least 1 (got {args.sessions})",
              file=sys.stderr)
        return 2
    if args.seed < 0:
        print(f"error: --seed cannot be negative (got {args.seed})",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be at least 1 (got {args.jobs})",
              file=sys.stderr)
        return 2
    if args.task_timeout is not None and args.task_timeout <= 0:
        print(f"error: --task-timeout must be positive "
              f"(got {args.task_timeout})", file=sys.stderr)
        return 2
    if args.max_task_retries is not None and args.max_task_retries < 0:
        print(f"error: --max-task-retries cannot be negative "
              f"(got {args.max_task_retries})", file=sys.stderr)
        return 2
    if args.jobs == 1 and (args.task_timeout is not None
                           or args.max_task_retries is not None):
        print("error: --task-timeout/--max-task-retries require "
              "supervised fan-out (--jobs 2 or more)", file=sys.stderr)
        return 2
    if args.pages < 1:
        print(f"error: --pages must be at least 1 (got {args.pages})",
              file=sys.stderr)
        return 2
    if args.video_s <= 0:
        print(f"error: --video-s must be positive (got {args.video_s})",
              file=sys.stderr)
        return 2
    if args.call_s <= 0:
        print(f"error: --call-s must be positive (got {args.call_s})",
              file=sys.stderr)
        return 2

    from repro.obs.progress import ProgressRenderer
    from repro.obs.runlog import RunLog
    from repro.parallel import get_executor
    from repro.population.config import PopulationConfig
    from repro.population.fleet import FleetRunner
    from repro.population.report import render_html, render_text

    runlog = None
    if args.runlog is not None or args.progress:
        listeners = [ProgressRenderer().handle] if args.progress else []
        runlog = RunLog(args.runlog, listeners=listeners)
    cache = None
    cache_dir = args.cache if args.cache is not None \
        else os.environ.get("REPRO_CACHE")
    if cache_dir:
        from repro.cache import TrialCache

        cache = TrialCache(Path(cache_dir))
    executor = get_executor(args.jobs, task_timeout_s=args.task_timeout,
                            max_task_retries=args.max_task_retries)
    config = PopulationConfig(sessions=args.sessions, seed=args.seed,
                              n_pages=args.pages, video_s=args.video_s,
                              call_s=args.call_s)
    runner = FleetRunner(config, executor=executor, runlog=runlog,
                         cache=cache)
    try:
        report = runner.run()
    except KeyboardInterrupt:
        print("interrupted: cached sessions replay on the next run "
              "(--cache DIR)", file=sys.stderr)
        return 130
    except Exception as error:  # noqa: BLE001 - one-line message, no traceback
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if runlog is not None:
            runlog.close()
        totals = getattr(executor, "supervision_totals", None)
        if totals is not None and args.jobs >= 2:
            print(f"supervision: {totals.pool_rebuilds} rebuilds, "
                  f"{totals.task_retries} retries, "
                  f"{len(totals.quarantined)} quarantined", file=sys.stderr)
        if cache is not None and cache.stats.lookups:
            print(cache.stats.line(), file=sys.stderr)
    sys.stdout.write(render_text(report))
    if args.json:
        _write(args.json, report.to_json())
    if args.html:
        _write(args.html, render_html(report))
    return 0


__all__ = ["build_parser", "main"]
