"""Fig 4a: streaming start-up/stall ratio across the Nexus4 ladder."""

from repro.analysis import render_table
from repro.core.studies import VideoStudy, VideoStudyConfig
from repro.device import NEXUS4_LADDER
from repro.video import VideoSpec


def run_fig4a():
    study = VideoStudy(VideoStudyConfig(clip=VideoSpec(duration_s=60),
                                        trials=1))
    return study.vs_clock(ladder=NEXUS4_LADDER)


def test_fig4a(benchmark, fig_printer):
    points = benchmark.pedantic(run_fig4a, rounds=1, iterations=1)
    table = render_table(
        ["Clock (MHz)", "Startup (s)", "Stall ratio"],
        [[p.label, f"{p.startup.mean:.2f}", f"{p.stall_ratio.mean:.3f}"]
         for p in points],
    )
    fig_printer("Fig 4a: YouTube vs clock frequency (Nexus4)", table)
    by_clock = {p.label: p for p in points}
    # Paper: startup ~3× over the ladder; stall ratio pinned at ~0.
    assert by_clock[384].startup.mean > 2 * by_clock[1512].startup.mean
    assert all(p.stall_ratio.mean < 0.03 for p in points)
