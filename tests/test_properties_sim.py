"""Property-based tests on kernel and device invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.device import Device, NEXUS4
from repro.device.memory import MemoryModel, MemorySpec
from repro.sim import Container, Environment, Resource, Store


@settings(max_examples=50, deadline=None)
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
def test_timeouts_fire_in_order(delays):
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert fired == sorted(fired)
    assert env.now == max(delays)


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.integers(1, 8),
    holds=st.lists(st.floats(0.01, 2.0), min_size=1, max_size=24),
)
def test_resource_never_over_granted(capacity, holds):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = [0]

    def worker(hold):
        with resource.request() as req:
            yield req
            peak[0] = max(peak[0], resource.count)
            yield env.timeout(hold)

    for hold in holds:
        env.process(worker(hold))
    env.run()
    assert peak[0] <= capacity
    assert resource.count == 0


@settings(max_examples=40, deadline=None)
@given(items=st.lists(st.integers(), max_size=30))
def test_store_preserves_order_and_items(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@settings(max_examples=40, deadline=None)
@given(
    puts=st.lists(st.floats(0.1, 5.0), min_size=1, max_size=15),
)
def test_container_conserves_mass(puts):
    env = Environment()
    tank = Container(env, capacity=1e9)
    for amount in puts:
        tank.put(amount)
    env.run()
    assert tank.level == sum(puts)


@settings(max_examples=30, deadline=None)
@given(
    cycles=st.floats(1e6, 1e9),
    mhz=st.sampled_from([384, 594, 810, 1134, 1512]),
)
def test_task_time_formula(cycles, mhz):
    env = Environment()
    device = Device(env, NEXUS4, pinned_mhz=mhz)
    task = device.submit(cycles)
    env.run(task.done)
    expected = cycles / (mhz * 1e6 * 1.40)
    assert abs(env.now - expected) <= max(1e-9, expected * 1e-6)


@settings(max_examples=50, deadline=None)
@given(
    size=st.floats(0.5, 8.0),
    ws_a=st.floats(0.0, 4.0),
    ws_b=st.floats(0.0, 4.0),
)
def test_memory_multiplier_monotone(size, ws_a, ws_b):
    model = MemoryModel(MemorySpec(size))
    low, high = sorted([ws_a, ws_b])
    assert model.cycle_multiplier(low) <= model.cycle_multiplier(high)
    assert 1.0 <= model.cycle_multiplier(low) <= model.max_penalty


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_device_simulation_is_seed_deterministic(seed):
    """Same seed → identical busy time; different work → consistent kernel."""
    busy = []
    for _ in range(2):
        env = Environment()
        device = Device(env, NEXUS4, governor="OD")
        rng = random.Random(seed)
        for _ in range(5):
            device.submit(rng.uniform(1e6, 1e8))
        env.run(until=2.0)
        busy.append(device.cpu.busy_time())
    assert busy[0] == busy[1]
